package history

import "fmt"

// WellFormedError describes the first well-formedness violation found in a
// history, with the index of the offending event.
type WellFormedError struct {
	Index int
	Event Event
	Rule  string
}

// Error implements error.
func (e *WellFormedError) Error() string {
	return fmt.Sprintf("history: event %d %s violates well-formedness: %s",
		e.Index, e.Event, e.Rule)
}

// WellFormed checks the well-formedness constraints of Section 2 of the
// paper and returns the first violation, or nil if the history is
// well-formed:
//
//   - A transaction waits for the response to its last invocation before
//     invoking again; an object responds only to a pending invocation, and
//     the response is issued by the object the invocation was sent to.
//   - A transaction commits or aborts at most once (and not both) per
//     object, and its global outcome is consistent: it never commits at one
//     object and aborts at another.
//   - A transaction cannot commit while an invocation is pending and cannot
//     invoke operations after it commits or aborts.
func WellFormed(h History) error {
	type txnState struct {
		pending    bool
		pendingObj ObjectID
		committed  map[ObjectID]bool
		aborted    map[ObjectID]bool
	}
	states := make(map[TxnID]*txnState)
	get := func(t TxnID) *txnState {
		s := states[t]
		if s == nil {
			s = &txnState{
				committed: make(map[ObjectID]bool),
				aborted:   make(map[ObjectID]bool),
			}
			states[t] = s
		}
		return s
	}
	fail := func(i int, e Event, rule string) error {
		return &WellFormedError{Index: i, Event: e, Rule: rule}
	}
	for i, e := range h {
		s := get(e.Txn)
		switch e.Kind {
		case Invoke:
			if s.pending {
				return fail(i, e, "invocation while another invocation is pending")
			}
			if len(s.committed) > 0 {
				return fail(i, e, "invocation after commit")
			}
			if len(s.aborted) > 0 {
				return fail(i, e, "invocation after abort")
			}
			s.pending = true
			s.pendingObj = e.Obj
		case Respond:
			if !s.pending {
				return fail(i, e, "response with no pending invocation")
			}
			if s.pendingObj != e.Obj {
				return fail(i, e, "response from an object other than the invoked one")
			}
			s.pending = false
		case Commit:
			if s.pending {
				return fail(i, e, "commit while an invocation is pending")
			}
			if len(s.aborted) > 0 {
				return fail(i, e, "commit after abort")
			}
			if s.committed[e.Obj] {
				return fail(i, e, "duplicate commit at object")
			}
			s.committed[e.Obj] = true
		case Abort:
			if len(s.committed) > 0 {
				return fail(i, e, "abort after commit")
			}
			if s.aborted[e.Obj] {
				return fail(i, e, "duplicate abort at object")
			}
			s.aborted[e.Obj] = true
		default:
			return fail(i, e, "unknown event kind")
		}
	}
	return nil
}

// MustWellFormed panics if h is not well-formed. It is intended for
// constructing test fixtures and example histories.
func MustWellFormed(h History) History {
	if err := WellFormed(h); err != nil {
		panic(err)
	}
	return h
}
