package history

import (
	"testing"

	"repro/internal/spec"
)

const bankX = ObjectID("BA")

func dep(i int) spec.Invocation  { return spec.NewInvocation("deposit", i) }
func wdr(i int) spec.Invocation  { return spec.NewInvocation("withdraw", i) }
func bal() spec.Invocation       { return spec.NewInvocation("balance") }
func ok() spec.Response          { return "ok" }
func res(s string) spec.Response { return spec.Response(s) }

// paperHistory builds the atomic history at the end of Section 3.3.
func paperHistory() History {
	return NewBuilder().
		Invoke(bankX, "A", dep(3)).Respond(bankX, "A", ok()).
		Invoke(bankX, "B", wdr(2)).Respond(bankX, "B", ok()).
		Invoke(bankX, "A", bal()).Respond(bankX, "A", res("3")).
		Invoke(bankX, "B", bal()).
		Commit(bankX, "A").
		Respond(bankX, "B", res("1")).
		Commit(bankX, "B").
		Invoke(bankX, "C", wdr(2)).Respond(bankX, "C", res("no")).
		Commit(bankX, "C").
		History()
}

func TestWellFormedAcceptsPaperHistory(t *testing.T) {
	if err := WellFormed(paperHistory()); err != nil {
		t.Fatalf("paper history should be well-formed: %v", err)
	}
}

func TestWellFormedViolations(t *testing.T) {
	cases := []struct {
		name string
		h    History
	}{
		{"double invoke", NewBuilder().
			Invoke(bankX, "A", dep(1)).Invoke(bankX, "A", dep(2)).History()},
		{"response without invocation", NewBuilder().
			Respond(bankX, "A", ok()).History()},
		{"response from wrong object", History{
			{Kind: Invoke, Obj: "X", Txn: "A", Inv: dep(1)},
			{Kind: Respond, Obj: "Y", Txn: "A", Res: ok()},
		}},
		{"commit while pending", NewBuilder().
			Invoke(bankX, "A", dep(1)).Commit(bankX, "A").History()},
		{"invoke after commit", NewBuilder().
			Exec(bankX, "A", spec.Op(dep(1), ok())).Commit(bankX, "A").
			Invoke(bankX, "A", dep(2)).History()},
		{"invoke after abort", NewBuilder().
			Exec(bankX, "A", spec.Op(dep(1), ok())).Abort(bankX, "A").
			Invoke(bankX, "A", dep(2)).History()},
		{"commit after abort", NewBuilder().
			Exec(bankX, "A", spec.Op(dep(1), ok())).Abort(bankX, "A").
			Commit(bankX, "A").History()},
		{"abort after commit", NewBuilder().
			Exec(bankX, "A", spec.Op(dep(1), ok())).Commit(bankX, "A").
			Abort(bankX, "A").History()},
		{"duplicate commit same object", NewBuilder().
			Exec(bankX, "A", spec.Op(dep(1), ok())).
			Commit(bankX, "A").Commit(bankX, "A").History()},
	}
	for _, c := range cases {
		if err := WellFormed(c.h); err == nil {
			t.Errorf("%s: expected well-formedness violation", c.name)
		}
	}
}

func TestWellFormedMultiObjectCommit(t *testing.T) {
	// Committing at two different objects is legal (atomic commitment).
	h := NewBuilder().
		Exec("X", "A", spec.Op(dep(1), ok())).
		Exec("Y", "A", spec.Op(dep(2), ok())).
		Commit("X", "A").Commit("Y", "A").
		History()
	if err := WellFormed(h); err != nil {
		t.Fatalf("multi-object commit should be well-formed: %v", err)
	}
}

func TestOpseq(t *testing.T) {
	h := paperHistory()
	ops := Opseq(h)
	want := spec.Seq{
		spec.Op(dep(3), "ok"),
		spec.Op(wdr(2), "ok"),
		spec.Op(bal(), "3"),
		spec.Op(bal(), "1"),
		spec.Op(wdr(2), "no"),
	}
	if len(ops) != len(want) {
		t.Fatalf("Opseq length = %d, want %d\n%v", len(ops), len(want), ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("Opseq[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestOpseqIgnoresPendingInvocations(t *testing.T) {
	h := NewBuilder().Invoke(bankX, "A", dep(1)).History()
	if got := Opseq(h); len(got) != 0 {
		t.Errorf("Opseq with pending invocation = %v, want empty", got)
	}
}

func TestProjections(t *testing.T) {
	h := paperHistory()
	ha := h.ProjectTxn("A")
	for _, e := range ha {
		if e.Txn != "A" {
			t.Fatalf("ProjectTxn leaked event %v", e)
		}
	}
	if len(ha) != 5 {
		t.Errorf("len(H|A) = %d, want 5", len(ha))
	}
	if got := len(h.ProjectObj(bankX)); got != len(h) {
		t.Errorf("ProjectObj(BA) dropped events: %d of %d", got, len(h))
	}
	if got := h.ProjectObj("other"); len(got) != 0 {
		t.Errorf("ProjectObj(other) = %v", got)
	}
}

func TestCommittedAbortedActive(t *testing.T) {
	h := NewBuilder().
		Exec(bankX, "A", spec.Op(dep(1), ok())).Commit(bankX, "A").
		Exec(bankX, "B", spec.Op(dep(2), ok())).Abort(bankX, "B").
		Exec(bankX, "C", spec.Op(dep(3), ok())).
		History()
	if !h.Committed()["A"] || h.Committed()["B"] || h.Committed()["C"] {
		t.Errorf("Committed = %v", h.Committed())
	}
	if !h.Aborted()["B"] || h.Aborted()["A"] {
		t.Errorf("Aborted = %v", h.Aborted())
	}
	act := h.Active()
	if len(act) != 1 || act[0] != "C" {
		t.Errorf("Active = %v, want [C]", act)
	}
	perm := h.Permanent()
	for _, e := range perm {
		if e.Txn != "A" {
			t.Errorf("Permanent contains %v", e)
		}
	}
}

func TestPendingInvocation(t *testing.T) {
	h := NewBuilder().Invoke(bankX, "A", dep(5)).History()
	inv, pending := h.PendingInvocation("A")
	if !pending || inv != dep(5) {
		t.Errorf("PendingInvocation = %v, %v", inv, pending)
	}
	h2 := append(h, Event{Kind: Respond, Obj: bankX, Txn: "A", Res: ok()})
	if _, pending := h2.PendingInvocation("A"); pending {
		t.Error("invocation should not be pending after response")
	}
	if _, pending := h.PendingInvocation("B"); pending {
		t.Error("B never invoked")
	}
}

func TestPrecedes(t *testing.T) {
	h := paperHistory()
	prec := Precedes(h)
	// B's balance responds after A commits; C's withdraw responds after B
	// commits (and after A commits).
	if !prec["A"]["B"] {
		t.Error("expected (A,B) ∈ precedes")
	}
	if !prec["B"]["C"] {
		t.Error("expected (B,C) ∈ precedes")
	}
	if !prec["A"]["C"] {
		t.Error("expected (A,C) ∈ precedes")
	}
	if prec["B"]["A"] || prec["C"]["A"] || prec["C"]["B"] {
		t.Errorf("unexpected precedes pairs: %v", prec)
	}
}

// TestPrecedesLemma1 verifies Lemma 1: precedes(H|X) ⊆ precedes(H) on a
// multi-object history.
func TestPrecedesLemma1(t *testing.T) {
	h := NewBuilder().
		Exec("X", "A", spec.Op(dep(1), ok())).
		Commit("X", "A").
		Exec("Y", "B", spec.Op(dep(2), ok())).
		Exec("X", "B", spec.Op(dep(3), ok())).
		Commit("Y", "B").Commit("X", "B").
		History()
	whole := Precedes(h)
	for _, x := range h.Objects() {
		local := Precedes(h.ProjectObj(x))
		for a, bs := range local {
			for b := range bs {
				if !whole[a][b] {
					t.Errorf("Lemma 1 violated at %s: (%s,%s) local but not global", x, a, b)
				}
			}
		}
	}
}

func TestSerial(t *testing.T) {
	h := paperHistory()
	s := Serial(h, []TxnID{"A", "B", "C"})
	if len(s) != len(h) {
		t.Fatalf("Serial length = %d, want %d", len(s), len(h))
	}
	// Serial histories are not interleaved.
	if !SerialFailureFree(s) {
		t.Error("Serial result should be serial failure-free")
	}
	// Omitting a transaction omits its events.
	s2 := Serial(h, []TxnID{"A", "C"})
	for _, e := range s2 {
		if e.Txn == "B" {
			t.Errorf("Serial with [A C] contains B event %v", e)
		}
	}
}

func TestSerialFailureFree(t *testing.T) {
	interleaved := NewBuilder().
		Invoke(bankX, "A", dep(1)).Respond(bankX, "A", ok()).
		Invoke(bankX, "B", dep(2)).Respond(bankX, "B", ok()).
		Invoke(bankX, "A", dep(3)).Respond(bankX, "A", ok()).
		History()
	if SerialFailureFree(interleaved) {
		t.Error("interleaved history should not be serial")
	}
	aborting := NewBuilder().
		Exec(bankX, "A", spec.Op(dep(1), ok())).Abort(bankX, "A").
		History()
	if SerialFailureFree(aborting) {
		t.Error("aborting history should not be failure-free")
	}
	// The paper history interleaves A and B, so it is not serial — but its
	// serialization in commit order is.
	if SerialFailureFree(paperHistory()) {
		t.Error("paper history interleaves transactions; not serial")
	}
	if !SerialFailureFree(Serial(paperHistory(), []TxnID{"A", "B", "C"})) {
		t.Error("serialized paper history should be serial failure-free")
	}
}

func TestCommitOrder(t *testing.T) {
	h := paperHistory()
	got := CommitOrder(h)
	want := []TxnID{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("CommitOrder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CommitOrder[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTxnsAndObjectsOrder(t *testing.T) {
	h := paperHistory()
	txns := h.Txns()
	if len(txns) != 3 || txns[0] != "A" || txns[1] != "B" || txns[2] != "C" {
		t.Errorf("Txns = %v", txns)
	}
	objs := h.Objects()
	if len(objs) != 1 || objs[0] != bankX {
		t.Errorf("Objects = %v", objs)
	}
}

func TestAppendDoesNotAlias(t *testing.T) {
	h := NewBuilder().Invoke(bankX, "A", dep(1)).History()
	h2 := h.Append(Event{Kind: Respond, Obj: bankX, Txn: "A", Res: ok()})
	h3 := h.Append(Event{Kind: Respond, Obj: bankX, Txn: "A", Res: res("no")})
	if h2[1].Res != ok() || h3[1].Res != res("no") {
		t.Error("Append results alias each other")
	}
}

func TestMustWellFormedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustWellFormed should panic on malformed history")
		}
	}()
	MustWellFormed(NewBuilder().Respond(bankX, "A", ok()).History())
}
