package history

import (
	"sync"
	"sync/atomic"
)

// SeqEvent is an Event stamped with its position in the global total order.
// Stamps are assigned from a single engine-wide atomic counter, so they are
// unique across all recorders sharing that counter.
type SeqEvent struct {
	Seq int64
	Event
}

// Recorder is an append-only event buffer used by one shard of the
// transaction engine. Each shard records only the events of the objects it
// owns; Merge reconstructs the totally ordered global history from all
// shards afterwards, so the hot path never takes an engine-wide lock.
//
// Record assigns the stamp and appends under one mutex, so each recorder's
// buffer is sorted by stamp. The engine calls Record while holding the
// object latch, which makes stamp order agree with each object's true
// execution order (and, since a transaction is single-goroutine, with each
// transaction's program order) — exactly the properties the well-formedness
// and atomicity checkers need from the merged history.
type Recorder struct {
	mu  sync.Mutex
	seq *atomic.Int64
	buf []SeqEvent
}

// NewRecorder builds a recorder stamping events from the shared counter.
func NewRecorder(seq *atomic.Int64) *Recorder {
	return &Recorder{seq: seq}
}

// Record stamps ev with the next global sequence number, appends it, and
// returns the stamp.
func (r *Recorder) Record(ev Event) int64 {
	r.mu.Lock()
	s := r.seq.Add(1)
	r.buf = append(r.buf, SeqEvent{Seq: s, Event: ev})
	r.mu.Unlock()
	return s
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Snapshot returns a copy of the buffer in stamp order.
func (r *Recorder) Snapshot() []SeqEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SeqEvent(nil), r.buf...)
}

// Merge reconstructs the totally ordered history from per-shard recorders
// by k-way merging their stamp-sorted buffers. The result is the global
// history the atomicity checkers, the abstract automaton, and cmd/histcheck
// consume — identical in order to what a single globally locked recorder
// would have produced.
func Merge(recorders ...*Recorder) History {
	bufs := make([][]SeqEvent, 0, len(recorders))
	total := 0
	for _, r := range recorders {
		if r == nil {
			continue
		}
		b := r.Snapshot()
		if len(b) > 0 {
			bufs = append(bufs, b)
			total += len(b)
		}
	}
	out := make(History, 0, total)
	heads := make([]int, len(bufs))
	for len(out) < total {
		best := -1
		var bestSeq int64
		for i, b := range bufs {
			if heads[i] >= len(b) {
				continue
			}
			if s := b[heads[i]].Seq; best == -1 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		out = append(out, bufs[best][heads[best]].Event)
		heads[best]++
	}
	return out
}
