package history

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/spec"
)

func TestRecorderStampsAndMergeOrder(t *testing.T) {
	var seq atomic.Int64
	a := NewRecorder(&seq)
	b := NewRecorder(&seq)
	// Interleave records across two recorders; stamps must be globally
	// unique and Merge must restore the interleaved order.
	a.Record(Event{Kind: Invoke, Obj: "X", Txn: "A", Inv: spec.Invocation{Name: "i1"}})
	b.Record(Event{Kind: Invoke, Obj: "Y", Txn: "B", Inv: spec.Invocation{Name: "i2"}})
	a.Record(Event{Kind: Respond, Obj: "X", Txn: "A", Res: "r1"})
	b.Record(Event{Kind: Respond, Obj: "Y", Txn: "B", Res: "r2"})
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	h := Merge(a, b)
	if len(h) != 4 {
		t.Fatalf("merged %d events", len(h))
	}
	wantObjs := []ObjectID{"X", "Y", "X", "Y"}
	for i, e := range h {
		if e.Obj != wantObjs[i] {
			t.Fatalf("merge order wrong at %d: got %s\n%s", i, e.Obj, h)
		}
	}
	// Per-recorder buffers are stamp-sorted.
	for _, r := range []*Recorder{a, b} {
		snap := r.Snapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i].Seq <= snap[i-1].Seq {
				t.Fatalf("buffer not sorted: %v", snap)
			}
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	var seq atomic.Int64
	if h := Merge(); len(h) != 0 {
		t.Fatalf("Merge() = %v", h)
	}
	if h := Merge(nil, NewRecorder(&seq)); len(h) != 0 {
		t.Fatalf("Merge(nil, empty) = %v", h)
	}
}

// TestRecorderConcurrentRace hammers recorders from many goroutines; under
// -race this validates the locking, and afterwards the merged history must
// contain every event with globally unique, totally ordered stamps.
func TestRecorderConcurrentRace(t *testing.T) {
	var seq atomic.Int64
	recs := make([]*Recorder, 4)
	for i := range recs {
		recs[i] = NewRecorder(&seq)
	}
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := recs[g%len(recs)]
			for i := 0; i < perG; i++ {
				r.Record(Event{Kind: Commit, Obj: "X", Txn: TxnID(rune('A' + g))})
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, r := range recs {
		total += r.Len()
	}
	if total != 8*perG {
		t.Fatalf("recorded %d events, want %d", total, 8*perG)
	}
	h := Merge(recs...)
	if len(h) != 8*perG {
		t.Fatalf("merged %d events, want %d", len(h), 8*perG)
	}
	if got := seq.Load(); got != 8*perG {
		t.Fatalf("sequence advanced to %d, want %d", got, 8*perG)
	}
}
