// Package history implements the event-based computational model of Weihl,
// "The Impact of Recovery on Concurrency Control" (JCSS 47, 1993),
// Section 2: events at the interface between transactions and objects,
// well-formed finite event sequences (histories), the Opseq mapping from
// histories to operation sequences, projections, the precedes relation, and
// the serializations used by the atomicity definitions.
package history

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// TxnID identifies a transaction.
type TxnID string

// ObjectID identifies an object.
type ObjectID string

// EventKind distinguishes the four kinds of events in the model.
type EventKind int

const (
	// Invoke is an invocation event <inv, X, A>.
	Invoke EventKind = iota
	// Respond is a response event <res, X, A>.
	Respond
	// Commit is a commit event <commit, X, A>: object X learns A committed.
	Commit
	// Abort is an abort event <abort, X, A>: object X learns A aborted.
	Abort
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Invoke:
		return "invoke"
	case Respond:
		return "respond"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is a single event involving an object and a transaction.
type Event struct {
	Kind EventKind
	Obj  ObjectID
	Txn  TxnID
	// Inv is set for Invoke events.
	Inv spec.Invocation
	// Res is set for Respond events.
	Res spec.Response
}

// String renders the event in the paper's angle-bracket notation.
func (e Event) String() string {
	switch e.Kind {
	case Invoke:
		return fmt.Sprintf("<%s, %s, %s>", e.Inv, e.Obj, e.Txn)
	case Respond:
		return fmt.Sprintf("<%s, %s, %s>", e.Res, e.Obj, e.Txn)
	case Commit:
		return fmt.Sprintf("<commit, %s, %s>", e.Obj, e.Txn)
	case Abort:
		return fmt.Sprintf("<abort, %s, %s>", e.Obj, e.Txn)
	}
	return fmt.Sprintf("<?%d, %s, %s>", int(e.Kind), e.Obj, e.Txn)
}

// History is a finite sequence of events. Not every History value is
// well-formed; WellFormed checks the constraints of Section 2.
type History []Event

// String renders the history one event per line.
func (h History) String() string {
	parts := make([]string, len(h))
	for i, e := range h {
		parts[i] = e.String()
	}
	return strings.Join(parts, "\n")
}

// Clone returns a copy of the history.
func (h History) Clone() History {
	out := make(History, len(h))
	copy(out, h)
	return out
}

// Append returns h with e appended, sharing no storage with h's tail.
func (h History) Append(e Event) History {
	out := make(History, len(h), len(h)+1)
	copy(out, h)
	return append(out, e)
}

// ProjectTxn returns the subsequence of events involving transaction a
// (the paper's H|A).
func (h History) ProjectTxn(a TxnID) History {
	var out History
	for _, e := range h {
		if e.Txn == a {
			out = append(out, e)
		}
	}
	return out
}

// ProjectTxns returns the subsequence of events involving any transaction in
// the set.
func (h History) ProjectTxns(set map[TxnID]bool) History {
	var out History
	for _, e := range h {
		if set[e.Txn] {
			out = append(out, e)
		}
	}
	return out
}

// ProjectObj returns the subsequence of events involving object x
// (the paper's H|X).
func (h History) ProjectObj(x ObjectID) History {
	var out History
	for _, e := range h {
		if e.Obj == x {
			out = append(out, e)
		}
	}
	return out
}

// Objects returns the distinct objects appearing in h, in first-appearance
// order.
func (h History) Objects() []ObjectID {
	seen := make(map[ObjectID]bool)
	var out []ObjectID
	for _, e := range h {
		if !seen[e.Obj] {
			seen[e.Obj] = true
			out = append(out, e.Obj)
		}
	}
	return out
}

// Txns returns the distinct transactions appearing in h, in first-appearance
// order.
func (h History) Txns() []TxnID {
	seen := make(map[TxnID]bool)
	var out []TxnID
	for _, e := range h {
		if !seen[e.Txn] {
			seen[e.Txn] = true
			out = append(out, e.Txn)
		}
	}
	return out
}

// Committed returns the set of transactions with a commit event in h.
func (h History) Committed() map[TxnID]bool {
	out := make(map[TxnID]bool)
	for _, e := range h {
		if e.Kind == Commit {
			out[e.Txn] = true
		}
	}
	return out
}

// Aborted returns the set of transactions with an abort event in h.
func (h History) Aborted() map[TxnID]bool {
	out := make(map[TxnID]bool)
	for _, e := range h {
		if e.Kind == Abort {
			out[e.Txn] = true
		}
	}
	return out
}

// Active returns the transactions appearing in h that are neither committed
// nor aborted, in first-appearance order.
func (h History) Active() []TxnID {
	committed := h.Committed()
	aborted := h.Aborted()
	var out []TxnID
	for _, t := range h.Txns() {
		if !committed[t] && !aborted[t] {
			out = append(out, t)
		}
	}
	return out
}

// Permanent returns H | Committed(H): the projection of h onto its
// committed transactions.
func (h History) Permanent() History {
	return h.ProjectTxns(h.Committed())
}

// PendingInvocation returns the pending invocation of transaction a in h,
// if any: the invocation of a's last Invoke event with no later Respond
// event for a.
func (h History) PendingInvocation(a TxnID) (spec.Invocation, bool) {
	var inv spec.Invocation
	pending := false
	for _, e := range h {
		if e.Txn != a {
			continue
		}
		switch e.Kind {
		case Invoke:
			inv = e.Inv
			pending = true
		case Respond:
			pending = false
		}
	}
	return inv, pending
}

// Opseq maps the history to its operation sequence: one operation per
// response event, pairing the response with the transaction's pending
// invocation, in response order. Invocation, commit, and abort events and
// pending invocations are ignored (paper, Section 3.3).
//
// Opseq assumes h is well-formed enough that every response event has a
// matching pending invocation; events violating that are skipped.
func Opseq(h History) spec.Seq {
	pending := make(map[TxnID]spec.Invocation)
	hasPending := make(map[TxnID]bool)
	var out spec.Seq
	for _, e := range h {
		switch e.Kind {
		case Invoke:
			pending[e.Txn] = e.Inv
			hasPending[e.Txn] = true
		case Respond:
			if hasPending[e.Txn] {
				out = append(out, spec.Op(pending[e.Txn], e.Res))
				hasPending[e.Txn] = false
			}
		}
	}
	return out
}

// Serial builds Serial(H, T): the serial history equivalent to h with
// transactions in the given order, i.e. the concatenation H|A1 · ... · H|An.
// Transactions in h but absent from order are omitted.
func Serial(h History, order []TxnID) History {
	var out History
	for _, t := range order {
		out = append(out, h.ProjectTxn(t)...)
	}
	return out
}

// Precedes computes the precedes(H) relation: (A, B) is in the relation iff
// some operation invoked by B responds after A commits in H. The events need
// not occur at the same object. The result maps A to the set of B with
// (A, B) in precedes(H).
func Precedes(h History) map[TxnID]map[TxnID]bool {
	out := make(map[TxnID]map[TxnID]bool)
	committed := make(map[TxnID]bool)
	for _, e := range h {
		switch e.Kind {
		case Commit:
			committed[e.Txn] = true
		case Respond:
			for a := range committed {
				if a == e.Txn {
					continue
				}
				m := out[a]
				if m == nil {
					m = make(map[TxnID]bool)
					out[a] = m
				}
				m[e.Txn] = true
			}
		}
	}
	return out
}

// CommitOrder returns the transactions that commit in h ordered by their
// first commit event (the paper's Commit-order(H)).
func CommitOrder(h History) []TxnID {
	seen := make(map[TxnID]bool)
	var out []TxnID
	for _, e := range h {
		if e.Kind == Commit && !seen[e.Txn] {
			seen[e.Txn] = true
			out = append(out, e.Txn)
		}
	}
	return out
}

// SerialFailureFree reports whether h is a serial failure-free history:
// events of different transactions are not interleaved and no transaction
// aborts.
func SerialFailureFree(h History) bool {
	finished := make(map[TxnID]bool)
	var current TxnID
	haveCurrent := false
	for _, e := range h {
		if e.Kind == Abort {
			return false
		}
		if finished[e.Txn] {
			return false
		}
		if haveCurrent && e.Txn != current {
			finished[current] = true
			if finished[e.Txn] {
				return false
			}
		}
		current = e.Txn
		haveCurrent = true
	}
	return true
}
