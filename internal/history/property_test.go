package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

// randomWellFormed generates a random well-formed history over nTxns
// transactions and nObjs objects, driving the same state machine WellFormed
// checks — so its output is well-formed by construction and exercises every
// event kind.
func randomWellFormed(rng *rand.Rand, nTxns, nObjs, steps int) History {
	type st struct {
		pending    bool
		pendingObj ObjectID
		done       bool
	}
	states := make([]st, nTxns)
	var h History
	txn := func(i int) TxnID { return TxnID(rune('A' + i)) }
	obj := func(i int) ObjectID { return ObjectID(rune('X' + i)) }
	for s := 0; s < steps; s++ {
		i := rng.Intn(nTxns)
		t := &states[i]
		if t.done {
			continue
		}
		switch {
		case t.pending:
			h = append(h, Event{Kind: Respond, Obj: t.pendingObj, Txn: txn(i), Res: "ok"})
			t.pending = false
		case rng.Intn(4) == 0 && len(h.ProjectTxn(txn(i))) > 0:
			kind := Commit
			if rng.Intn(2) == 0 {
				kind = Abort
			}
			h = append(h, Event{Kind: kind, Obj: obj(rng.Intn(nObjs)), Txn: txn(i)})
			t.done = true
		default:
			o := obj(rng.Intn(nObjs))
			h = append(h, Event{Kind: Invoke, Obj: o, Txn: txn(i), Inv: spec.NewInvocation("op", s)})
			t.pending = true
			t.pendingObj = o
		}
	}
	return h
}

// TestRandomHistoriesWellFormed: the generator's output always passes
// WellFormed, and so does every prefix (well-formedness is prefix-closed).
func TestRandomHistoriesWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomWellFormed(rng, 1+rng.Intn(4), 1+rng.Intn(3), 30)
		if WellFormed(h) != nil {
			return false
		}
		for i := range h {
			if WellFormed(h[:i]) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestOpseqCountsResponses: |Opseq(H)| equals the number of response events
// with a matching pending invocation.
func TestOpseqCountsResponses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomWellFormed(rng, 3, 2, 40)
		responses := 0
		for _, e := range h {
			if e.Kind == Respond {
				responses++
			}
		}
		return len(Opseq(h)) == responses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPrecedesIsAcyclic: precedes(H) of a well-formed history is a partial
// order — in particular it has no cycles.
func TestPrecedesIsAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomWellFormed(rng, 4, 2, 50)
		prec := Precedes(h)
		// DFS cycle check.
		const (
			unseen = 0
			onPath = 1
			done   = 2
		)
		color := make(map[TxnID]int)
		var dfs func(t TxnID) bool // true if cycle
		dfs = func(x TxnID) bool {
			color[x] = onPath
			for y := range prec[x] {
				switch color[y] {
				case onPath:
					return true
				case unseen:
					if dfs(y) {
						return true
					}
				}
			}
			color[x] = done
			return false
		}
		for a := range prec {
			if color[a] == unseen && dfs(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestProjectionPartition: every event of H appears in exactly one
// transaction projection and exactly one object projection.
func TestProjectionPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomWellFormed(rng, 4, 3, 40)
		total := 0
		for _, a := range h.Txns() {
			total += len(h.ProjectTxn(a))
		}
		if total != len(h) {
			return false
		}
		total = 0
		for _, x := range h.Objects() {
			total += len(h.ProjectObj(x))
		}
		return total == len(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSerialPreservesPerTxnSubsequences: Serial(H, T) is equivalent to H —
// every transaction performs the same steps (H|A is preserved exactly).
func TestSerialPreservesPerTxnSubsequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomWellFormed(rng, 4, 2, 40)
		order := h.Txns()
		// Shuffle the order.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		s := Serial(h, order)
		if len(s) != len(h) {
			return false
		}
		for _, a := range order {
			ha, sa := h.ProjectTxn(a), s.ProjectTxn(a)
			if len(ha) != len(sa) {
				return false
			}
			for i := range ha {
				if ha[i] != sa[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPermanentContainsOnlyCommitted: permanent(H) holds exactly the events
// of committed transactions.
func TestPermanentContainsOnlyCommitted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomWellFormed(rng, 5, 2, 50)
		perm := h.Permanent()
		committed := h.Committed()
		for _, e := range perm {
			if !committed[e.Txn] {
				return false
			}
		}
		// Count check: all committed events survive.
		want := 0
		for _, e := range h {
			if committed[e.Txn] {
				want++
			}
		}
		return len(perm) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
