package history

import "repro/internal/spec"

// Builder constructs histories fluently. It is the standard way to write
// test fixtures and the machine-built counterexample histories of
// Theorems 9 and 10.
type Builder struct {
	h History
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Invoke appends an invocation event.
func (b *Builder) Invoke(x ObjectID, a TxnID, inv spec.Invocation) *Builder {
	b.h = append(b.h, Event{Kind: Invoke, Obj: x, Txn: a, Inv: inv})
	return b
}

// Respond appends a response event.
func (b *Builder) Respond(x ObjectID, a TxnID, res spec.Response) *Builder {
	b.h = append(b.h, Event{Kind: Respond, Obj: x, Txn: a, Res: res})
	return b
}

// Exec appends the invocation and response events of a completed operation.
func (b *Builder) Exec(x ObjectID, a TxnID, op spec.Operation) *Builder {
	return b.Invoke(x, a, op.Inv).Respond(x, a, op.Res)
}

// ExecSeq appends the events of a whole operation sequence executed by a.
func (b *Builder) ExecSeq(x ObjectID, a TxnID, seq spec.Seq) *Builder {
	for _, op := range seq {
		b.Exec(x, a, op)
	}
	return b
}

// Commit appends a commit event.
func (b *Builder) Commit(x ObjectID, a TxnID) *Builder {
	b.h = append(b.h, Event{Kind: Commit, Obj: x, Txn: a})
	return b
}

// Abort appends an abort event.
func (b *Builder) Abort(x ObjectID, a TxnID) *Builder {
	b.h = append(b.h, Event{Kind: Abort, Obj: x, Txn: a})
	return b
}

// History returns the built history (a copy, so the builder may be reused).
func (b *Builder) History() History {
	return b.h.Clone()
}
