package stripe

import "testing"

func TestRoundPow2(t *testing.T) {
	cases := []struct{ n, max, want int }{
		{0, 256, 1},
		{-5, 256, 1},
		{1, 256, 1},
		{3, 256, 4},
		{8, 256, 8},
		{9, 256, 16},
		{300, 256, 256},
		{300, 300, 256}, // non-power-of-two max rounds down first
		{7, 6, 4},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := RoundPow2(c.n, c.max); got != c.want {
			t.Errorf("RoundPow2(%d, %d) = %d, want %d", c.n, c.max, got, c.want)
		}
		if got := RoundPow2(c.n, c.max); got > c.max {
			t.Errorf("RoundPow2(%d, %d) = %d exceeds max", c.n, c.max, got)
		}
	}
}

func TestFNV32aStable(t *testing.T) {
	// Pin a few values so the stripe placement of persisted workloads
	// cannot silently change.
	if FNV32a("") != 2166136261 {
		t.Error("empty-string hash changed")
	}
	if FNV32a("acct00") == FNV32a("acct01") {
		t.Error("distinct ids should hash apart")
	}
	if FNV32a("T0001") != FNV32a("T0001") {
		t.Error("hash not deterministic")
	}
}
