// Package stripe holds the small helpers every striped structure in the
// engine shares: the string hash that picks a stripe, the power-of-two
// rounding that sizes the stripe array, and the common stripe-count cap.
// Centralizing them keeps the txn registry, the WAL staging buffers, and
// the deadlock detector partitioning identically instead of drifting apart
// copy by copy.
package stripe

// MaxStripes caps every stripe array in the engine (a stripe is cheap but
// not free; past this point more stripes cannot help).
const MaxStripes = 256

// FNV32a hashes s with 32-bit FNV-1a (inline loop — no allocation, unlike
// hash/fnv).
func FNV32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// RoundPow2 rounds n up to a power of two no greater than max; the result
// is always in [1, max]. A non-power-of-two max is first rounded down so
// the contract holds for any max ≥ 1.
func RoundPow2(n, max int) int {
	hi := 1
	for hi*2 <= max {
		hi <<= 1
	}
	if n > hi {
		n = hi
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
