package stripe

import (
	"sync"
	"sync/atomic"
)

// CowMap is an atomic copy-on-write map: readers load an immutable map
// snapshot through one atomic pointer and never take a lock, writers copy
// the whole map under a small mutex and publish the successor with an
// atomic store. It is the registry shape behind the engine's lock-free
// object lookup (and, eventually, the waits-for detector): inserts are
// rare and O(n), reads are the hot path and cost exactly a pointer load
// plus a native map access.
//
// The discipline that makes this safe — and that the atomicfield analyzer
// checks — is that a map reached through Load is never mutated in place:
// every published map is frozen forever, so a reader racing a writer sees
// either the old snapshot or the new one, never a torn map.
type CowMap[K comparable, V any] struct {
	// mu serializes writers only; readers never touch it.
	mu sync.Mutex
	// p points at the current immutable snapshot (nil before the first
	// insert — Get treats a nil snapshot as empty).
	p atomic.Pointer[map[K]V]
}

// Get returns the value under k. It performs no lock acquisition: one
// atomic pointer load, then a read of an immutable map.
func (m *CowMap[K, V]) Get(k K) (V, bool) {
	mp := m.p.Load()
	if mp == nil {
		var zero V
		return zero, false
	}
	v, ok := (*mp)[k]
	return v, ok
}

// Insert publishes k→v if k is absent and reports whether it did. The
// entire map is copied under the writer mutex and the successor published
// atomically, so concurrent Gets always observe a complete snapshot.
func (m *CowMap[K, V]) Insert(k K, v V) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.p.Load()
	if old != nil {
		if _, dup := (*old)[k]; dup {
			return false
		}
	}
	var next map[K]V
	if old == nil {
		next = map[K]V{k: v}
	} else {
		next = make(map[K]V, len(*old)+1)
		for ok, ov := range *old {
			next[ok] = ov
		}
		next[k] = v
	}
	m.p.Store(&next)
	return true
}

// Len returns the size of the current snapshot.
func (m *CowMap[K, V]) Len() int {
	mp := m.p.Load()
	if mp == nil {
		return 0
	}
	return len(*mp)
}

// Range calls f on every entry of the current snapshot (in map order —
// callers needing determinism must sort), stopping early if f returns
// false. Entries inserted after the snapshot was loaded are not visited.
func (m *CowMap[K, V]) Range(f func(K, V) bool) {
	mp := m.p.Load()
	if mp == nil {
		return
	}
	for k, v := range *mp {
		if !f(k, v) {
			return
		}
	}
}
