package stripe

import (
	"fmt"
	"sync"
	"testing"
)

func TestCowMapBasic(t *testing.T) {
	var m CowMap[string, int]
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map reported a hit")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
	if !m.Insert("a", 1) {
		t.Fatal("first insert of a failed")
	}
	if m.Insert("a", 2) {
		t.Fatal("duplicate insert of a succeeded")
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v, want 1,true (duplicate insert must not overwrite)", v, ok)
	}
	if !m.Insert("b", 2) {
		t.Fatal("insert of b failed")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	got := map[string]int{}
	m.Range(func(k string, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != 2 || got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("Range gathered %v", got)
	}
	// Early stop.
	n := 0
	m.Range(func(string, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range visited %d entries after stop, want 1", n)
	}
}

// TestCowMapSnapshotImmutable checks that a snapshot taken by Range is not
// perturbed by a concurrent insert: the published maps are frozen.
func TestCowMapSnapshotImmutable(t *testing.T) {
	var m CowMap[int, int]
	for i := 0; i < 8; i++ {
		m.Insert(i, i)
	}
	seen := 0
	m.Range(func(k, v int) bool {
		if seen == 0 {
			m.Insert(100, 100) // lands in a successor map, not this snapshot
		}
		if k == 100 {
			t.Fatal("Range observed an entry inserted mid-iteration")
		}
		seen++
		return true
	})
	if seen != 8 {
		t.Fatalf("Range visited %d entries, want 8", seen)
	}
	if v, ok := m.Get(100); !ok || v != 100 {
		t.Fatal("insert during Range was lost")
	}
}

// TestCowMapConcurrent hammers Get against Insert under the race detector:
// no lookup may tear and no insert may be lost.
func TestCowMapConcurrent(t *testing.T) {
	var m CowMap[string, int]
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < perWriter; i++ {
					k := fmt.Sprintf("k%d", i)
					if v, ok := m.Get(k); ok && v < 0 {
						t.Error("torn read")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m.Insert(fmt.Sprintf("w%d-%d", w, i), w*perWriter+i)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish, then stop the readers.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := fmt.Sprintf("w%d-%d", w, i)
			for {
				if _, ok := m.Get(k); ok {
					break
				}
				select {
				case <-done:
					if _, ok := m.Get(k); !ok {
						t.Fatalf("insert of %s lost", k)
					}
				default:
				}
			}
		}
	}
	close(stop)
	<-done
	if m.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*perWriter)
	}
}
