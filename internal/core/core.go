// Package core implements the paper's primary contribution: the abstract
// model of an atomic object I(X, Spec, View, Conflict) of Weihl,
// "The Impact of Recovery on Concurrency Control" (JCSS 47, 1993),
// Section 4, together with the two recovery abstractions of Section 5
// (update-in-place and deferred-update View functions) and the
// counterexample constructions used in the only-if directions of
// Theorems 9 and 10.
//
// The object's state is literally the sequence of events that have occurred
// at it. Input events (invocations, commits, aborts) are always enabled;
// a response event is enabled iff the transaction has a pending invocation,
// the operation conflicts with no operation executed by another active
// transaction, and the response is legal after the serial state computed by
// the View function.
package core

import (
	"fmt"

	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
)

// View abstracts a recovery method: it maps the object's event history and
// an active transaction to the serial state (an operation sequence) against
// which that transaction's next response is validated (paper, Section 4).
type View struct {
	Name string
	F    func(h history.History, a history.TxnID) spec.Seq
}

// UIP is the update-in-place recovery abstraction (paper, Section 5):
// the serial state contains the operations of all non-aborted transactions
// (committed and active alike) in execution order.
var UIP = View{
	Name: "UIP",
	F: func(h history.History, a history.TxnID) spec.Seq {
		aborted := h.Aborted()
		keep := make(map[history.TxnID]bool)
		for _, t := range h.Txns() {
			if !aborted[t] {
				keep[t] = true
			}
		}
		return history.Opseq(h.ProjectTxns(keep))
	},
}

// DU is the deferred-update recovery abstraction (paper, Section 5):
// the serial state contains the operations of committed transactions in
// commit order, followed by the operations of the active transaction itself.
var DU = View{
	Name: "DU",
	F: func(h history.History, a history.TxnID) spec.Seq {
		committedSerial := history.Serial(h.Permanent(), history.CommitOrder(h))
		return append(history.Opseq(committedSerial), history.Opseq(h.ProjectTxn(a))...)
	},
}

// Object is the I(X, Spec, View, Conflict) automaton. Its state is the
// event history; methods append events subject to the preconditions of
// Section 4. Object is not safe for concurrent use: it models a single
// I/O automaton whose steps are atomic.
type Object struct {
	id       history.ObjectID
	spec     spec.Spec
	view     View
	conflict commute.Relation
	state    history.History
}

// NewObject builds the automaton for object id with the given parameters.
func NewObject(id history.ObjectID, sp spec.Spec, v View, conflict commute.Relation) *Object {
	return &Object{id: id, spec: sp, view: v, conflict: conflict}
}

// ID returns the object identifier.
func (o *Object) ID() history.ObjectID { return o.id }

// History returns a copy of the object's event history (its state).
func (o *Object) History() history.History { return o.state.Clone() }

// Invoke appends an invocation event. Invocations are input actions and
// always enabled, but Invoke enforces the well-formedness constraints the
// environment is assumed to preserve, returning an error on violation.
func (o *Object) Invoke(a history.TxnID, inv spec.Invocation) error {
	return o.applyInput(history.Event{Kind: history.Invoke, Obj: o.id, Txn: a, Inv: inv})
}

// Commit appends a commit event (input action).
func (o *Object) Commit(a history.TxnID) error {
	return o.applyInput(history.Event{Kind: history.Commit, Obj: o.id, Txn: a})
}

// Abort appends an abort event (input action).
func (o *Object) Abort(a history.TxnID) error {
	return o.applyInput(history.Event{Kind: history.Abort, Obj: o.id, Txn: a})
}

func (o *Object) applyInput(e history.Event) error {
	next := o.state.Append(e)
	if err := history.WellFormed(next); err != nil {
		return err
	}
	o.state = next
	return nil
}

// ResponseEnabled reports whether the response event <res, X, A> is enabled
// in the current state, and if not, why. The three preconditions are those
// of Section 4.
func (o *Object) ResponseEnabled(a history.TxnID, res spec.Response) (bool, string) {
	inv, pending := o.state.PendingInvocation(a)
	if !pending {
		return false, fmt.Sprintf("transaction %s has no pending invocation", a)
	}
	op := spec.Op(inv, res)
	// No conflict with any operation already executed by another active
	// transaction.
	for _, b := range o.state.Active() {
		if b == a {
			continue
		}
		for _, p := range history.Opseq(o.state.ProjectTxn(b)) {
			if o.conflict.Conflicts(op, p) {
				return false, fmt.Sprintf("%s conflicts with %s held by active %s under %s", op, p, b, o.conflict.Name())
			}
		}
	}
	// The response must be legal after the view's serial state.
	serial := append(o.view.F(o.state, a), op)
	if !o.spec.Legal(serial) {
		return false, fmt.Sprintf("%s illegal after %s view %s", op, o.view.Name, serial[:len(serial)-1])
	}
	return true, ""
}

// Respond appends the response event if it is enabled, otherwise returns an
// error describing the violated precondition.
func (o *Object) Respond(a history.TxnID, res spec.Response) error {
	ok, reason := o.ResponseEnabled(a, res)
	if !ok {
		return fmt.Errorf("core: response %q for %s not enabled: %s", res, a, reason)
	}
	o.state = o.state.Append(history.Event{Kind: history.Respond, Obj: o.id, Txn: a, Res: res})
	return nil
}

// EnabledResponses returns the candidate responses currently enabled for
// a's pending invocation, drawn from the given candidates.
func (o *Object) EnabledResponses(a history.TxnID, candidates []spec.Response) []spec.Response {
	var out []spec.Response
	for _, r := range candidates {
		if ok, _ := o.ResponseEnabled(a, r); ok {
			out = append(out, r)
		}
	}
	return out
}

// Accepts replays h (which must involve only this object's ID) against a
// fresh copy of the automaton and reports whether every event is
// permitted: input events must preserve well-formedness and every response
// event must be enabled at its point. On rejection it returns the index of
// the offending event and a reason.
func Accepts(id history.ObjectID, sp spec.Spec, v View, conflict commute.Relation, h history.History) (bool, int, string) {
	o := NewObject(id, sp, v, conflict)
	for i, e := range h {
		if e.Obj != id {
			return false, i, fmt.Sprintf("event involves object %q, not %q", e.Obj, id)
		}
		var err error
		switch e.Kind {
		case history.Invoke:
			err = o.Invoke(e.Txn, e.Inv)
		case history.Respond:
			err = o.Respond(e.Txn, e.Res)
		case history.Commit:
			err = o.Commit(e.Txn)
		case history.Abort:
			err = o.Abort(e.Txn)
		default:
			err = fmt.Errorf("unknown event kind %v", e.Kind)
		}
		if err != nil {
			return false, i, err.Error()
		}
	}
	return true, -1, ""
}
