package core

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/history"
	"repro/internal/spec"
)

const bankX = history.ObjectID("BA")

// TestViewsSection5Example reproduces the UIP/DU comparison worked in
// Section 5: after A deposits 5 and commits and B withdraws 3 (active),
// UIP(H, ·) includes both operations for every transaction, while DU(H, C)
// for an unrelated transaction C contains only A's committed deposit.
func TestViewsSection5Example(t *testing.T) {
	h := history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(5)).Respond(bankX, "A", "ok").
		Commit(bankX, "A").
		Invoke(bankX, "B", adt.Withdraw(3)).Respond(bankX, "B", "ok").
		History()
	both := spec.Seq{adt.DepositOk(5), adt.WithdrawOk(3)}
	onlyA := spec.Seq{adt.DepositOk(5)}

	check := func(name string, got, want spec.Seq) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s = %s, want %s", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s = %s, want %s", name, got, want)
			}
		}
	}
	check("UIP(H,B)", UIP.F(h, "B"), both)
	check("UIP(H,C)", UIP.F(h, "C"), both)
	check("DU(H,B)", DU.F(h, "B"), both)
	check("DU(H,C)", DU.F(h, "C"), onlyA)
}

// TestUIPExcludesAborted: UIP drops aborted transactions' operations.
func TestUIPExcludesAborted(t *testing.T) {
	h := history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(5)).Respond(bankX, "A", "ok").
		Abort(bankX, "A").
		Invoke(bankX, "B", adt.Deposit(2)).Respond(bankX, "B", "ok").
		History()
	got := UIP.F(h, "B")
	if len(got) != 1 || got[0] != adt.DepositOk(2) {
		t.Fatalf("UIP after abort = %s", got)
	}
}

// TestDUCommitOrderNotExecutionOrder: DU orders committed operations by
// commit order, which may differ from execution order.
func TestDUCommitOrderNotExecutionOrder(t *testing.T) {
	x := history.ObjectID("Q")
	// A enqueues a, then B enqueues b; B commits first.
	h := history.NewBuilder().
		Invoke(x, "A", adt.Enq("a")).Respond(x, "A", "ok").
		Invoke(x, "B", adt.Enq("b")).Respond(x, "B", "ok").
		Commit(x, "B").
		Commit(x, "A").
		History()
	got := DU.F(h, "C")
	want := spec.Seq{adt.EnqOk("b"), adt.EnqOk("a")}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("DU = %s, want %s (commit order)", got, want)
	}
	// UIP uses execution order instead.
	uip := UIP.F(h, "C")
	if uip[0] != adt.EnqOk("a") {
		t.Fatalf("UIP = %s, want execution order", uip)
	}
}

// TestObjectBasicLifecycle drives the I(X, Spec, View, Conflict) automaton
// through the paper's example history.
func TestObjectBasicLifecycle(t *testing.T) {
	ba := adt.DefaultBankAccount()
	o := NewObject(bankX, ba.Spec(), UIP, ba.NRBC())
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(o.Invoke("A", adt.Deposit(3)))
	must(o.Respond("A", "ok"))
	must(o.Commit("A"))
	must(o.Invoke("B", adt.Withdraw(2)))
	must(o.Respond("B", "ok"))
	must(o.Commit("B"))
	if err := history.WellFormed(o.History()); err != nil {
		t.Fatal(err)
	}
}

// TestObjectEnforcesSpecLegality: responses inconsistent with the view are
// rejected.
func TestObjectEnforcesSpecLegality(t *testing.T) {
	ba := adt.DefaultBankAccount()
	o := NewObject(bankX, ba.Spec(), UIP, ba.NRBC())
	if err := o.Invoke("A", adt.Withdraw(5)); err != nil {
		t.Fatal(err)
	}
	if err := o.Respond("A", "ok"); err == nil {
		t.Fatal("overdraft response should be rejected")
	}
	if err := o.Respond("A", "no"); err != nil {
		t.Fatalf("failed-withdrawal response should be accepted: %v", err)
	}
	enabled := o.EnabledResponses("A", []spec.Response{"ok", "no"})
	if len(enabled) != 0 {
		t.Fatalf("no pending invocation; EnabledResponses = %v", enabled)
	}
}

// TestObjectEnforcesConflicts: under UIP/NRBC, a requested successful
// withdrawal conflicts with an active transaction's deposit.
func TestObjectEnforcesConflicts(t *testing.T) {
	ba := adt.DefaultBankAccount()
	o := NewObject(bankX, ba.Spec(), UIP, ba.NRBC())
	if err := o.Invoke("A", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := o.Respond("A", "ok"); err != nil {
		t.Fatal(err)
	}
	// B's withdrawal depends on A's uncommitted deposit: blocked.
	if err := o.Invoke("B", adt.Withdraw(3)); err != nil {
		t.Fatal(err)
	}
	if ok, reason := o.ResponseEnabled("B", "ok"); ok {
		t.Fatal("withdraw-ok should conflict with held deposit under NRBC")
	} else if reason == "" {
		t.Fatal("expected a reason")
	}
	// After A commits, the lock is released and the response enables.
	if err := o.Commit("A"); err != nil {
		t.Fatal(err)
	}
	if ok, reason := o.ResponseEnabled("B", "ok"); !ok {
		t.Fatalf("withdrawal should enable after commit: %s", reason)
	}
}

// TestObjectWellFormednessGuards: input events preserve well-formedness.
func TestObjectWellFormednessGuards(t *testing.T) {
	ba := adt.DefaultBankAccount()
	o := NewObject(bankX, ba.Spec(), UIP, ba.NRBC())
	if err := o.Invoke("A", adt.Deposit(1)); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke("A", adt.Deposit(2)); err == nil {
		t.Fatal("second invocation while pending should fail")
	}
	if err := o.Commit("A"); err == nil {
		t.Fatal("commit while pending should fail")
	}
	if err := o.Respond("A", "ok"); err != nil {
		t.Fatal(err)
	}
	if err := o.Abort("A"); err != nil {
		t.Fatal(err)
	}
	if err := o.Commit("A"); err == nil {
		t.Fatal("commit after abort should fail")
	}
}

// theoremSpecs returns the spec map for counterexample checking.
func theoremSpecs(sp spec.Spec) atomicity.Specs {
	return atomicity.Specs{bankX: sp}
}

// TestTheorem9OnlyIfBankAccount machine-builds the Theorem 9
// counterexample on the bank account: run UIP with the NFC conflict
// relation, which misses the NRBC pair (withdraw-ok, deposit). The
// resulting history must be accepted by the automaton and must not be
// dynamic atomic.
func TestTheorem9OnlyIfBankAccount(t *testing.T) {
	ba := adt.DefaultBankAccount()
	c := ba.Checker()
	p, q := adt.WithdrawOk(2), adt.DepositOk(2)
	// (P,Q) ∈ NRBC \ NFC.
	if !ba.NRBC().Conflicts(p, q) || ba.NFC().Conflicts(p, q) {
		t.Fatal("precondition: (wok,dep) ∈ NRBC \\ NFC")
	}
	v, found := c.RBCViolationWitness(p, q)
	if !found {
		t.Fatal("expected an RBC violation witness")
	}
	ce := BuildUIPCounterexample(bankX, v)
	if err := history.WellFormed(ce.H); err != nil {
		t.Fatalf("counterexample not well-formed: %v", err)
	}
	ok, idx, reason := Accepts(bankX, ba.Spec(), UIP, ba.NFC(), ce.H)
	if !ok {
		t.Fatalf("I(X,Spec,UIP,NFC) must accept the counterexample; event %d: %s\n%s", idx, reason, ce.H)
	}
	da, viol, err := atomicity.DynamicAtomic(ce.H, theoremSpecs(ba.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if da {
		t.Fatalf("counterexample should not be dynamic atomic:\n%s", ce.H)
	}
	t.Logf("%s; violating order %v", ce.Comment, viol.Order)
	// Sanity: with the full NRBC relation the same history is rejected.
	ok, _, _ = Accepts(bankX, ba.Spec(), UIP, ba.NRBC(), ce.H)
	if ok {
		t.Fatal("I(X,Spec,UIP,NRBC) must reject the counterexample")
	}
}

// TestTheorem10OnlyIfBankAccount mirrors Theorem 10 on the bank account:
// run DU with the NRBC conflict relation, which misses the NFC pair
// (withdraw-ok, withdraw-ok) — two withdrawals both validated against the
// committed balance.
func TestTheorem10OnlyIfBankAccount(t *testing.T) {
	ba := adt.DefaultBankAccount()
	c := ba.Checker()
	p, q := adt.WithdrawOk(2), adt.WithdrawOk(2)
	if !ba.NFC().Conflicts(p, q) || ba.NRBC().Conflicts(p, q) {
		t.Fatal("precondition: (wok,wok) ∈ NFC \\ NRBC")
	}
	v, found := c.FCViolationWitness(p, q)
	if !found {
		t.Fatal("expected an FC violation witness")
	}
	ce := BuildDUCounterexample(bankX, v)
	if err := history.WellFormed(ce.H); err != nil {
		t.Fatalf("counterexample not well-formed: %v", err)
	}
	ok, idx, reason := Accepts(bankX, ba.Spec(), DU, ba.NRBC(), ce.H)
	if !ok {
		t.Fatalf("I(X,Spec,DU,NRBC) must accept the counterexample; event %d: %s\n%s", idx, reason, ce.H)
	}
	da, viol, err := atomicity.DynamicAtomic(ce.H, theoremSpecs(ba.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if da {
		t.Fatalf("counterexample should not be dynamic atomic:\n%s", ce.H)
	}
	t.Logf("%s; violating order %v", ce.Comment, viol.Order)
	ok, _, _ = Accepts(bankX, ba.Spec(), DU, ba.NFC(), ce.H)
	if ok {
		t.Fatal("I(X,Spec,DU,NFC) must reject the counterexample")
	}
}

// TestTheoremOnlyIfGenericWitnesses sweeps every operation pair of several
// finite specs: whenever the checker reports a violation witness, the
// corresponding machine-built counterexample must be accepted by the
// under-conflicted automaton and must not be dynamic atomic. This validates
// the only-if constructions generically, not just on the bank account.
func TestTheoremOnlyIfGenericWitnesses(t *testing.T) {
	specs := []spec.Enumerable{
		adt.PartialSpecA(), adt.PartialSpecB(),
		adt.NondetSpecC(), adt.NondetSpecD(),
		adt.TableISpec(),
	}
	for _, sp := range specs {
		c := NewCheckerForTest(sp)
		none := emptyRelation()
		for _, p := range sp.Alphabet() {
			for _, q := range sp.Alphabet() {
				if v, found := c.RBCViolationWitness(p, q); found {
					ce := BuildUIPCounterexample("X", v)
					if err := history.WellFormed(ce.H); err != nil {
						t.Fatalf("%s: UIP counterexample (%s,%s) malformed: %v", sp.Name(), p, q, err)
					}
					ok, idx, reason := Accepts("X", sp, UIP, none, ce.H)
					if !ok {
						t.Fatalf("%s: UIP automaton rejected counterexample for (%s,%s) at %d: %s", sp.Name(), p, q, idx, reason)
					}
					da, _, err := atomicity.DynamicAtomic(ce.H, atomicity.Specs{"X": sp})
					if err != nil {
						t.Fatal(err)
					}
					if da {
						t.Fatalf("%s: UIP counterexample for (%s,%s) is dynamic atomic:\n%s", sp.Name(), p, q, ce.H)
					}
				}
				if v, found := c.FCViolationWitness(p, q); found {
					ce := BuildDUCounterexample("X", v)
					if err := history.WellFormed(ce.H); err != nil {
						t.Fatalf("%s: DU counterexample (%s,%s) malformed: %v", sp.Name(), p, q, err)
					}
					ok, idx, reason := Accepts("X", sp, DU, none, ce.H)
					if !ok {
						t.Fatalf("%s: DU automaton rejected counterexample for (%s,%s) at %d: %s", sp.Name(), p, q, idx, reason)
					}
					da, _, err := atomicity.DynamicAtomic(ce.H, atomicity.Specs{"X": sp})
					if err != nil {
						t.Fatal(err)
					}
					if da {
						t.Fatalf("%s: DU counterexample for (%s,%s) is dynamic atomic:\n%s", sp.Name(), p, q, ce.H)
					}
				}
			}
		}
	}
}
