package core

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
)

// NewCheckerForTest builds a plain commute.Checker (exported for the
// theorem sweep test; the checker lives in another package).
func NewCheckerForTest(e spec.Enumerable) *commute.Checker {
	return commute.NewChecker(e)
}

func emptyRelation() commute.Relation {
	return commute.RelationFunc{RelName: "none", F: func(p, q spec.Operation) bool { return false }}
}

// checkAllODA explores the automaton and verifies every reachable history
// is online dynamic atomic. Returns the number of histories explored.
func checkAllODA(t *testing.T, sp spec.Enumerable, v View, conflict commute.Relation, cfgTxns []history.TxnID, maxEvents int, allowAbort bool) int {
	t.Helper()
	specs := atomicity.Specs{"X": sp}
	count, err := Explore(ExploreConfig{
		Object:       "X",
		Spec:         sp,
		View:         v,
		Conflict:     conflict,
		Txns:         cfgTxns,
		MaxEvents:    maxEvents,
		MaxOpsPerTxn: 2,
		AllowAbort:   allowAbort,
	}, func(h history.History) error {
		// Only histories ending in a response or commit can newly violate
		// dynamic atomicity; checking there keeps the sweep affordable.
		last := h[len(h)-1]
		if last.Kind != history.Respond && last.Kind != history.Commit {
			return nil
		}
		oda, viol, err := atomicity.OnlineDynamicAtomic(h, specs)
		if err != nil {
			return err
		}
		if !oda {
			t.Fatalf("reachable history not online dynamic atomic (%v):\n%s", viol, h)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return count
}

// findViolation explores and reports whether some reachable history is NOT
// online dynamic atomic.
func findViolation(t *testing.T, sp spec.Enumerable, v View, conflict commute.Relation, cfgTxns []history.TxnID, maxEvents int) bool {
	t.Helper()
	specs := atomicity.Specs{"X": sp}
	found := false
	_, err := Explore(ExploreConfig{
		Object:       "X",
		Spec:         sp,
		View:         v,
		Conflict:     conflict,
		Txns:         cfgTxns,
		MaxEvents:    maxEvents,
		MaxOpsPerTxn: 2,
	}, func(h history.History) error {
		last := h[len(h)-1]
		if last.Kind != history.Respond && last.Kind != history.Commit {
			return nil
		}
		oda, _, err := atomicity.OnlineDynamicAtomic(h, specs)
		if err != nil {
			return err
		}
		if !oda {
			found = true
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		t.Fatal(err)
	}
	return found
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop exploration" }

// TestTheorem9IfDirectionExhaustive validates the if direction of
// Theorem 9 by bounded exhaustive exploration: with NRBC ⊆ Conflict, every
// reachable history of I(X, Spec, UIP, Conflict) is online dynamic atomic.
// Specs: the two partial mini-specs and the Table I automaton.
// exploreBudget gives per-spec exploration bounds: three transactions for
// the small partial specs, two for the larger nondeterministic alphabet.
func exploreBudget(sp spec.Enumerable) ([]history.TxnID, int) {
	if len(sp.Alphabet()) > 2 {
		return []history.TxnID{"A", "B"}, 8
	}
	return []history.TxnID{"A", "B", "C"}, 7
}

func TestTheorem9IfDirectionExhaustive(t *testing.T) {
	for _, sp := range []spec.Enumerable{adt.PartialSpecA(), adt.PartialSpecB(), adt.NondetSpecC()} {
		c := commute.NewChecker(sp)
		txns, maxEvents := exploreBudget(sp)
		n := checkAllODA(t, sp, UIP, c.NRBCRelation(), txns, maxEvents, true)
		if n == 0 {
			t.Fatalf("%s: exploration visited nothing", sp.Name())
		}
		t.Logf("%s: %d histories explored under UIP/NRBC", sp.Name(), n)
	}
}

// TestTheorem10IfDirectionExhaustive mirrors the if direction of
// Theorem 10: with NFC ⊆ Conflict, every reachable history of
// I(X, Spec, DU, Conflict) is online dynamic atomic.
func TestTheorem10IfDirectionExhaustive(t *testing.T) {
	for _, sp := range []spec.Enumerable{adt.PartialSpecA(), adt.PartialSpecB(), adt.NondetSpecC()} {
		c := commute.NewChecker(sp)
		txns, maxEvents := exploreBudget(sp)
		n := checkAllODA(t, sp, DU, c.NFCRelation(), txns, maxEvents, true)
		if n == 0 {
			t.Fatalf("%s: exploration visited nothing", sp.Name())
		}
		t.Logf("%s: %d histories explored under DU/NFC", sp.Name(), n)
	}
}

// TestTheorem9OnlyIfByExploration independently rediscovers the only-if
// direction: on PartialSpecB, UIP with an empty conflict relation reaches a
// non-dynamic-atomic history (the checker's witness is not consulted).
func TestTheorem9OnlyIfByExploration(t *testing.T) {
	sp := adt.PartialSpecB()
	if !findViolation(t, sp, UIP, emptyRelation(), []history.TxnID{"A", "B"}, 8) {
		t.Fatal("exploration should find a UIP violation with no conflicts")
	}
	// And with the full NRBC relation no violation exists within the bound.
	c := commute.NewChecker(sp)
	if findViolation(t, sp, UIP, c.NRBCRelation(), []history.TxnID{"A", "B"}, 8) {
		t.Fatal("no violation should exist under NRBC")
	}
}

// TestTheorem10OnlyIfByExploration mirrors the DU case: on PartialSpecB,
// the NRBC relation is NOT sufficient for DU (it misses the NFC pairs
// ([I,Q],[I,Q]) and ([J,R],[J,R])), and exploration finds a violation.
func TestTheorem10OnlyIfByExploration(t *testing.T) {
	sp := adt.PartialSpecB()
	c := commute.NewChecker(sp)
	// Precondition: NRBC does not contain NFC here.
	if c.NRBCRelation().Conflicts(adt.OpJR, adt.OpJR) {
		t.Fatal("([J,R],[J,R]) should not be in NRBC for this spec")
	}
	if !c.NFCRelation().Conflicts(adt.OpJR, adt.OpJR) {
		t.Fatal("([J,R],[J,R]) should be in NFC for this spec")
	}
	if !findViolation(t, sp, DU, c.NRBCRelation(), []history.TxnID{"A", "B"}, 8) {
		t.Fatal("exploration should find a DU violation under NRBC")
	}
	if findViolation(t, sp, DU, c.NFCRelation(), []history.TxnID{"A", "B"}, 8) {
		t.Fatal("no violation should exist under NFC")
	}
}

// TestUIPvsDUDivergenceOnBankAccount demonstrates the incomparability
// dynamically on a small bank-account window: UIP/NRBC accepts a
// concurrent-withdrawal history that DU/NFC forbids, and DU/NFC accepts a
// withdraw-after-uncommitted-deposit history that UIP/NRBC forbids.
func TestUIPvsDUDivergenceOnBankAccount(t *testing.T) {
	ba := adt.DefaultBankAccount()
	sp := ba.Spec()

	// History 1: A deposits 4 and commits; B and C each withdraw 2
	// concurrently.
	h1 := history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(4)).Respond(bankX, "A", "ok").
		Commit(bankX, "A").
		Invoke(bankX, "B", adt.Withdraw(2)).Respond(bankX, "B", "ok").
		Invoke(bankX, "C", adt.Withdraw(2)).Respond(bankX, "C", "ok").
		Commit(bankX, "B").Commit(bankX, "C").
		History()
	if ok, idx, reason := Accepts(bankX, sp, UIP, ba.NRBC(), h1); !ok {
		t.Fatalf("UIP/NRBC must accept concurrent withdrawals: event %d: %s", idx, reason)
	}
	if ok, _, _ := Accepts(bankX, sp, DU, ba.NFC(), h1); ok {
		t.Fatal("DU/NFC must reject concurrent withdrawals")
	}

	// History 2: A deposits 2 (uncommitted); B withdraws 2 reading through
	// the deposit; then both commit, B first.
	h2 := history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(2)).Respond(bankX, "A", "ok").
		Invoke(bankX, "B", adt.Withdraw(2)).Respond(bankX, "B", "ok").
		Commit(bankX, "B").Commit(bankX, "A").
		History()
	if ok, _, _ := Accepts(bankX, sp, UIP, ba.NRBC(), h2); ok {
		t.Fatal("UIP/NRBC must reject withdrawal against uncommitted deposit")
	}
	// Note: DU would compute B's view as the committed state (0), so the
	// "ok" response is not even legal under DU — the two methods disagree
	// about the response itself, not just the conflict.
	if ok, _, _ := Accepts(bankX, sp, DU, ba.NFC(), h2); ok {
		t.Fatal("DU/NFC rejects h2 too: B's view is the committed balance 0")
	}
	// The DU-side acceptance divergence: with a committed balance of 5, B's
	// withdrawal validates against the committed state while A's uncommitted
	// deposit is in flight — (wok, dep) ∉ NFC, so DU/NFC accepts; under
	// UIP/NRBC the same pair conflicts, so the automaton rejects.
	h3 := history.NewBuilder().
		Invoke(bankX, "Z", adt.Deposit(5)).Respond(bankX, "Z", "ok").
		Commit(bankX, "Z").
		Invoke(bankX, "A", adt.Deposit(2)).Respond(bankX, "A", "ok").
		Invoke(bankX, "B", adt.Withdraw(2)).Respond(bankX, "B", "ok").
		Commit(bankX, "B").Commit(bankX, "A").
		History()
	if ok, idx, reason := Accepts(bankX, sp, DU, ba.NFC(), h3); !ok {
		t.Fatalf("DU/NFC must accept the withdrawal against the committed balance: event %d: %s", idx, reason)
	}
	if ok, _, _ := Accepts(bankX, sp, UIP, ba.NRBC(), h3); ok {
		t.Fatal("UIP/NRBC must reject: the requested withdrawal conflicts with the held deposit")
	}
}

// TestExploreCountsAndBounds sanity-checks the explorer's bounding logic.
func TestExploreCountsAndBounds(t *testing.T) {
	sp := adt.PartialSpecA()
	c := commute.NewChecker(sp)
	var maxLen int
	count, err := Explore(ExploreConfig{
		Object:       "X",
		Spec:         sp,
		View:         UIP,
		Conflict:     c.NRBCRelation(),
		Txns:         []history.TxnID{"A", "B"},
		MaxEvents:    5,
		MaxOpsPerTxn: 1,
	}, func(h history.History) error {
		if len(h) > maxLen {
			maxLen = len(h)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("exploration visited nothing")
	}
	if maxLen > 5 {
		t.Fatalf("explorer exceeded MaxEvents: %d", maxLen)
	}
	if _, err := Explore(ExploreConfig{Spec: sp, View: UIP, Conflict: c.NRBCRelation()}, nil); err == nil {
		t.Error("MaxEvents=0 should be an error")
	}
}
