package core

import (
	"fmt"

	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
)

// ResponseEnabledIn evaluates the response-event precondition of Section 4
// against an explicit history. It is the functional form of
// Object.ResponseEnabled, used by the exhaustive explorer, which needs to
// evaluate preconditions against histories it backtracks over.
func ResponseEnabledIn(h history.History, sp spec.Spec, v View, conflict commute.Relation, a history.TxnID, res spec.Response) bool {
	inv, pending := h.PendingInvocation(a)
	if !pending {
		return false
	}
	op := spec.Op(inv, res)
	for _, b := range h.Active() {
		if b == a {
			continue
		}
		for _, p := range history.Opseq(h.ProjectTxn(b)) {
			if conflict.Conflicts(op, p) {
				return false
			}
		}
	}
	serial := append(v.F(h, a), op)
	return sp.Legal(serial)
}

// ExploreConfig bounds an exhaustive exploration of the reachable histories
// of I(X, Spec, View, Conflict).
type ExploreConfig struct {
	Object   history.ObjectID
	Spec     spec.Enumerable
	View     View
	Conflict commute.Relation
	// Txns is the transaction pool; the explorer considers events for each.
	Txns []history.TxnID
	// MaxEvents bounds the history length.
	MaxEvents int
	// MaxOpsPerTxn bounds the number of operations each transaction invokes.
	MaxOpsPerTxn int
	// AllowAbort includes abort events in the exploration.
	AllowAbort bool
}

// Explore enumerates every history of the automaton reachable within the
// bounds, in depth-first order, invoking visit on each non-empty reachable
// history. If visit returns a non-nil error the exploration stops and the
// error is returned. The returned count is the number of histories visited.
//
// The exploration tree is exact: input events (invocations, commits,
// aborts) are always enabled subject to well-formedness, and response
// events are enabled per the Section 4 preconditions. Because the
// environment controls input events, exploring all interleavings of the
// transaction pool covers every behavior of the automaton within the
// bounds.
func Explore(cfg ExploreConfig, visit func(h history.History) error) (int, error) {
	if cfg.MaxEvents <= 0 {
		return 0, fmt.Errorf("core: ExploreConfig.MaxEvents must be positive")
	}
	if cfg.MaxOpsPerTxn <= 0 {
		cfg.MaxOpsPerTxn = cfg.MaxEvents
	}
	invocations := spec.Invocations(cfg.Spec)
	count := 0
	h := make(history.History, 0, cfg.MaxEvents)

	var rec func() error
	rec = func() error {
		if len(h) >= cfg.MaxEvents {
			return nil
		}
		committed := h.Committed()
		aborted := h.Aborted()
		opsOf := func(t history.TxnID) int {
			n := 0
			for _, e := range h {
				if e.Txn == t && e.Kind == history.Invoke {
					n++
				}
			}
			return n
		}
		push := func(e history.Event) error {
			h = append(h, e)
			count++
			if err := visit(h); err != nil {
				return err
			}
			if err := rec(); err != nil {
				return err
			}
			h = h[:len(h)-1]
			return nil
		}
		for _, t := range cfg.Txns {
			if committed[t] || aborted[t] {
				continue
			}
			inv, pending := h.PendingInvocation(t)
			if pending {
				for _, r := range spec.Responses(cfg.Spec, inv) {
					if ResponseEnabledIn(h, cfg.Spec, cfg.View, cfg.Conflict, t, r) {
						if err := push(history.Event{Kind: history.Respond, Obj: cfg.Object, Txn: t, Res: r}); err != nil {
							return err
						}
					}
				}
				continue
			}
			hasEvents := len(h.ProjectTxn(t)) > 0
			if hasEvents {
				if err := push(history.Event{Kind: history.Commit, Obj: cfg.Object, Txn: t}); err != nil {
					return err
				}
				if cfg.AllowAbort {
					if err := push(history.Event{Kind: history.Abort, Obj: cfg.Object, Txn: t}); err != nil {
						return err
					}
				}
			}
			if opsOf(t) < cfg.MaxOpsPerTxn {
				for _, inv := range invocations {
					if err := push(history.Event{Kind: history.Invoke, Obj: cfg.Object, Txn: t, Inv: inv}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return count, err
	}
	return count, nil
}
