package core

import (
	"fmt"

	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
)

// Counterexample packages a machine-built history witnessing that an
// I(X, Spec, View, Conflict) instance is incorrect: the history is accepted
// by the automaton yet is not dynamic atomic. These reproduce the
// constructions in the only-if directions of Theorems 9 and 10.
type Counterexample struct {
	Object  history.ObjectID
	View    View
	H       history.History
	Comment string
}

// BuildUIPCounterexample constructs the Theorem 9 history for a pair
// (P, Q) ∈ NRBC(Spec) with (P, Q) ∉ Conflict, from the violation witness:
//
//	A executes α and commits; B executes Q; C executes P;
//	B commits; C commits; D executes ρ and commits.
//
// The history is accepted by I(X, Spec, UIP, Conflict) because C's response
// only requires (P, Q) ∉ Conflict and the UIP view α·Q·P is legal; it is not
// dynamic atomic because B and C are unordered by precedes yet the order
// A-C-B-D yields α·P·Q·ρ ∉ Spec.
func BuildUIPCounterexample(x history.ObjectID, v *commute.RBCViolation) *Counterexample {
	b := history.NewBuilder()
	if len(v.Alpha) > 0 {
		b.ExecSeq(x, "A", v.Alpha).Commit(x, "A")
	}
	b.Exec(x, "B", v.Q)
	b.Exec(x, "C", v.P)
	b.Commit(x, "B").Commit(x, "C")
	if len(v.Rho) > 0 {
		b.ExecSeq(x, "D", v.Rho).Commit(x, "D")
	}
	return &Counterexample{
		Object: x,
		View:   UIP,
		H:      b.History(),
		Comment: fmt.Sprintf("Theorem 9 only-if: (P,Q)=(%s,%s) ∈ NRBC, α=%s, ρ=%s",
			v.P, v.Q, v.Alpha, v.Rho),
	}
}

// BuildDUCounterexample constructs the Theorem 10 history for a pair
// (P, Q) ∈ NFC(Spec) with (P, Q) ∉ Conflict, from the violation witness.
//
// Case 1 (α·P·Q ∉ Spec):
//
//	A executes α and commits; B executes Q; C executes P; both commit.
//	Serialization A-C-B yields α·P·Q ∉ Spec.
//
// Case 2 (orders distinguished by ρ, with α·L1·L2·ρ ∈ Spec and
// α·L2·L1·ρ ∉ Spec):
//
//	A executes α and commits; B executes Q; C executes P;
//	the executor of L1 commits first, then the other; D executes ρ and
//	commits. D's DU view is α·L1·L2·ρ (legal), but the serialization
//	placing L2's executor before L1's yields α·L2·L1·ρ ∉ Spec.
//
// In both cases P is executed second, so acceptance needs only
// (P, Q) ∉ Conflict.
func BuildDUCounterexample(x history.ObjectID, v *commute.FCViolation) *Counterexample {
	b := history.NewBuilder()
	if len(v.Alpha) > 0 {
		b.ExecSeq(x, "A", v.Alpha).Commit(x, "A")
	}
	// B executes Q first, C executes P second: C's response precondition
	// checks Conflict(P, Q), which is absent by hypothesis.
	b.Exec(x, "B", v.Q)
	b.Exec(x, "C", v.P)
	comment := ""
	if v.PQIllegal {
		b.Commit(x, "B").Commit(x, "C")
		comment = fmt.Sprintf("Theorem 10 only-if case 1: (P,Q)=(%s,%s) ∈ NFC, α=%s, α·P·Q ∉ Spec",
			v.P, v.Q, v.Alpha)
	} else {
		// Commit the executor of LegalFirst first so D's deferred-update
		// view replays the legal order.
		execOf := map[spec.Operation]history.TxnID{v.Q: "B", v.P: "C"}
		first := execOf[v.LegalFirst]
		second := execOf[v.LegalSecond]
		b.Commit(x, first).Commit(x, second)
		b.ExecSeq(x, "D", v.Rho).Commit(x, "D")
		comment = fmt.Sprintf("Theorem 10 only-if case 2: (P,Q)=(%s,%s) ∈ NFC, α=%s, legal order %s·%s, ρ=%s",
			v.P, v.Q, v.Alpha, v.LegalFirst, v.LegalSecond, v.Rho)
	}
	return &Counterexample{Object: x, View: DU, H: b.History(), Comment: comment}
}
