package core

import (
	"math/rand"
	"testing"

	"repro/internal/atomicity"
	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
)

// randomSpec builds a random prefix-closed specification over a two-op
// alphabet with up to four states, possibly nondeterministic and partial —
// the full generality the theorems cover.
func randomSpec(rng *rand.Rand) *spec.Automaton {
	ops := []spec.Operation{
		spec.Op(spec.NewInvocation("a"), "x"),
		spec.Op(spec.NewInvocation("b"), "y"),
	}
	states := []string{"0", "1", "2", "3"}[:2+rng.Intn(3)]
	m := spec.NewAutomaton("rand", "0")
	for _, s := range states {
		for _, op := range ops {
			// Each (state, op) gets 0, 1, or 2 successors.
			for k := rng.Intn(3); k > 0; k-- {
				m.AddTransition(s, op, states[rng.Intn(len(states))])
			}
		}
	}
	return m.Freeze()
}

// TestTheoremsIfDirectionOnRandomSpecs is the strongest generic validation
// of the if directions: for each random spec, run the automaton
// I(X, Spec, UIP, NRBC) and I(X, Spec, DU, NFC) through bounded exhaustive
// exploration and require every reachable history to be online dynamic
// atomic. Any checker bug, view bug, or conflict-direction mix-up shows up
// here as a concrete violating history.
func TestTheoremsIfDirectionOnRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	txns := []history.TxnID{"A", "B"}
	for trial := 0; trial < 25; trial++ {
		sp := randomSpec(rng)
		c := commute.NewChecker(sp)
		checkAllODA(t, sp, UIP, c.NRBCRelation(), txns, 8, true)
		checkAllODA(t, sp, DU, c.NFCRelation(), txns, 8, true)
	}
}

// TestTheoremsOnlyIfOnRandomSpecs: for each random spec, whenever a pair is
// missing from the minimal relation AND the checker reports a violation
// witness, the machine-built counterexample must be accepted and
// non-dynamic-atomic. (This complements the sweep over the fixed paper
// specs with adversarial random structure.)
func TestTheoremsOnlyIfOnRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	none := emptyRelation()
	for trial := 0; trial < 40; trial++ {
		sp := randomSpec(rng)
		c := commute.NewChecker(sp)
		specs := atomicity.Specs{"X": sp}
		for _, p := range sp.Alphabet() {
			for _, q := range sp.Alphabet() {
				if v, found := c.RBCViolationWitness(p, q); found {
					ce := BuildUIPCounterexample("X", v)
					ok, idx, reason := Accepts("X", sp, UIP, none, ce.H)
					if !ok {
						t.Fatalf("random spec: UIP counterexample rejected at %d: %s\n%s", idx, reason, ce.H)
					}
					da, _, err := atomicity.DynamicAtomic(ce.H, specs)
					if err != nil {
						t.Fatal(err)
					}
					if da {
						t.Fatalf("random spec: UIP counterexample dynamic atomic:\n%s", ce.H)
					}
				}
				if v, found := c.FCViolationWitness(p, q); found {
					ce := BuildDUCounterexample("X", v)
					ok, idx, reason := Accepts("X", sp, DU, none, ce.H)
					if !ok {
						t.Fatalf("random spec: DU counterexample rejected at %d: %s\n%s", idx, reason, ce.H)
					}
					da, _, err := atomicity.DynamicAtomic(ce.H, specs)
					if err != nil {
						t.Fatal(err)
					}
					if da {
						t.Fatalf("random spec: DU counterexample dynamic atomic:\n%s", ce.H)
					}
				}
			}
		}
	}
}
