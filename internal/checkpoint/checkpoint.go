// Package checkpoint defines the fuzzy-checkpoint artifact and its durable
// stores: the bounded-restart half of the recovery story. The durable log
// otherwise grows without bound and restart cost is proportional to run
// length rather than to the recovery discipline — exactly the coupling the
// restart-time-versus-log-length experiment (E17) measures.
//
// A Snapshot is taken fuzzily — object by object, without stopping the
// world — by the transaction engine (see txn.Engine.Checkpoint): for every
// undo-log object it captures, under that object's latch, the current
// update-in-place state together with the in-flight transaction table (each
// active transaction's pending undo records at that object), and stages a
// wal.CheckpointRec marker whose LSN splits the object's log records
// exactly into "reflected in the capture" and "replay at restart". The
// captured state is deliberately the dirty state plus the undo table, not
// the committed state alone: update-in-place replay is response-checked
// against the live execution, so restart must resume from precisely the
// state the suffix records executed against; the committed state is always
// recoverable from the pair by applying the table's undo records, which is
// what a checkpoint-seeded restart does to the losers.
//
// The checkpoint's correctness contract (enforced by the engine, proved by
// the crash sweeps in internal/recovery):
//
//   - Frontier is the LSN of a begin marker staged before any capture, so
//     every record a restart could need — any captured object's marker, any
//     in-table transaction's decision record, any record of an object
//     registered mid-checkpoint — has an LSN at or past it. The log may be
//     truncated before Frontier once the snapshot is durable.
//   - A snapshot is saved only after the WAL's durable watermark covers its
//     last marker, so every effect baked into a captured state is durable,
//     and (via the engine's commit gate) every transaction whose effects
//     are captured without undo records has a durable transaction-level
//     commit record — no unsynced loser can ever be frozen into a
//     checkpoint.
//   - Saving is atomic (write-temp-then-rename in the file store): a crash
//     mid-checkpoint leaves the previous snapshot authoritative, and a torn
//     file is ignored on reopen.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/history"
	"repro/internal/spec"
	"repro/internal/wal"
)

// PendingOp is one applied-but-uncommitted update of an in-flight
// transaction at capture time: the operation plus its undo token in
// durable encoded form (see adt.UndoTokenCodec). Restart seeds the
// object's undo table from these, so a transaction that never produces
// another log record — its client died with the prefix — is still fully
// undoable from the snapshot alone.
type PendingOp struct {
	Op spec.Operation `json:"op"`
	// Undo is the encoded undo token; HasUndo distinguishes "no token
	// needed" (purely logical inverse) from an empty encoding.
	Undo    string `json:"undo,omitempty"`
	HasUndo bool   `json:"has_undo,omitempty"`
}

// ActiveTxn is one in-flight transaction's entry in an object's captured
// transaction table: its pending updates in apply order.
type ActiveTxn struct {
	Txn history.TxnID `json:"txn"`
	Ops []PendingOp   `json:"ops"`
}

// ObjectSnapshot is one object's capture: the update-in-place state as of
// the object's marker record, plus the in-flight transaction table at that
// instant. Restart seeds the object from State and Active and replays only
// log records with LSN past MarkerLSN.
type ObjectSnapshot struct {
	Obj       history.ObjectID `json:"obj"`
	MarkerLSN wal.LSN          `json:"marker_lsn"`
	// State is the machine's canonical encoding of the captured value
	// (decoded at restart via adt.ValueCodec).
	State  string      `json:"state"`
	Active []ActiveTxn `json:"active,omitempty"`
}

// Snapshot is one complete fuzzy checkpoint.
type Snapshot struct {
	// ID is the engine-assigned checkpoint identifier; it is also the Txn
	// field of the checkpoint's wal.CheckpointRec markers.
	ID string `json:"id"`
	// Seq orders snapshots within a store (assigned by Save).
	Seq int `json:"seq"`
	// Frontier is the begin marker's LSN: restart's winner scan needs only
	// records at or past it, and the log may be truncated before it.
	Frontier wal.LSN `json:"frontier"`
	// DurableLSN is the WAL's durable watermark when the snapshot
	// completed (diagnostics; always at or past the last marker).
	DurableLSN wal.LSN `json:"durable_lsn"`
	// TruncatedBefore is the truncation point the engine actually realized
	// after this checkpoint — Frontier clamped to the durable watermark and
	// aligned down to the backend's truncation boundary (a segment start,
	// for the segmented backend; see wal.TruncateAligner). Zero when
	// truncation was disabled or nothing was reclaimed. Diagnostics: the
	// reopened log's base always equals the newest snapshot's aligned
	// point, never the raw frontier.
	TruncatedBefore wal.LSN `json:"truncated_before,omitempty"`
	// Discipline records the logging discipline of the engine that took the
	// snapshot (wal.DisciplineRedo for a redo-only engine; empty means undo
	// logging). Restart rejects a snapshot whose discipline contradicts the
	// log's marker — a mixed-discipline handoff must fail loudly.
	Discipline string           `json:"discipline,omitempty"`
	Objects    []ObjectSnapshot `json:"objects"`
}

// Object returns the capture for obj, or nil if the snapshot does not
// cover it (an object registered after the checkpoint's shard walk, which
// restart replays in full from the retained log).
func (s *Snapshot) Object(obj history.ObjectID) *ObjectSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Objects {
		if s.Objects[i].Obj == obj {
			return &s.Objects[i]
		}
	}
	return nil
}

// Store is the durability seam for snapshots. Save must be atomic: a
// reader (Latest, possibly in a different process after a crash) observes
// either the previous snapshot or the complete new one, never a torn mix.
type Store interface {
	// Save persists s as the newest snapshot, assigning s.Seq.
	Save(s *Snapshot) error
	// Latest returns the newest complete snapshot, or nil if none exists.
	Latest() (*Snapshot, error)
}

// MemStore is the in-memory store: snapshots survive nothing, which is
// exactly right for sweeps that only need bounded in-memory replay and for
// tests of the capture protocol itself.
type MemStore struct {
	mu     sync.Mutex
	latest *Snapshot
	seq    int
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store.
func (m *MemStore) Save(s *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	s.Seq = m.seq
	m.latest = s
	return nil
}

// Latest implements Store.
func (m *MemStore) Latest() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest, nil
}

// CrashHook simulates a machine dying before a checkpoint reaches durable
// storage: when it returns true, Save reports success — the dying process
// believes its checkpoint completed — but nothing is persisted, mirroring
// the wal.CrashPoint contract under which acknowledgements continue while
// writes are lost. Crash harnesses share one flag between both hooks so
// the WAL and the checkpoint store die at the same instant.
type CrashHook func(s *Snapshot) bool

// FileStore persists each snapshot as one JSON file in a directory,
// written to a temporary sibling and renamed into place — atomic on POSIX
// rename semantics, so a crash mid-save leaves the previous snapshot file
// untouched and at worst a stale temporary that Latest never considers. A
// renamed file that still fails to parse (torn by a crash that beat the
// rename's durability) is skipped, falling back to the next-newest
// complete snapshot.
type FileStore struct {
	mu    sync.Mutex
	dir   string
	seq   int
	crash CrashHook
}

const (
	ckptSuffix = ".ckpt"
	ckptPrefix = "checkpoint-"
)

// OpenFileStore opens (creating if needed) a directory store. Existing
// snapshots are retained; new saves continue the sequence.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store %s: %w", dir, err)
	}
	fs := &FileStore{dir: dir}
	seqs, err := fs.sequences()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		fs.seq = seqs[len(seqs)-1]
	}
	return fs, nil
}

// SetCrashHook installs the crash-injection hook (tests only).
func (f *FileStore) SetCrashHook(h CrashHook) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crash = h
}

// Dir returns the store directory.
func (f *FileStore) Dir() string { return f.dir }

// sequences lists the sequence numbers of the snapshot files present,
// ascending. Callers hold f.mu or have exclusive access.
func (f *FileStore) sequences() ([]int, error) {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan store %s: %w", f.dir, err)
	}
	var seqs []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix))
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)
	return seqs, nil
}

func (f *FileStore) pathOf(seq int) string {
	return filepath.Join(f.dir, fmt.Sprintf("%s%06d%s", ckptPrefix, seq, ckptSuffix))
}

// Save implements Store: marshal, write to a temporary file, fsync, rename
// into place, then delete older snapshots (the newest complete one is
// always preserved until its successor is fully durable).
func (f *FileStore) Save(s *Snapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	s.Seq = f.seq
	if f.crash != nil && f.crash(s) {
		return nil // the dying machine believes the save succeeded
	}
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", s.ID, err)
	}
	final := f.pathOf(s.Seq)
	tmp := final + ".tmp"
	w, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", s.ID, err)
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: save %s: %w", s.ID, err)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: save %s: %w", s.ID, err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: save %s: %w", s.ID, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: save %s: %w", s.ID, err)
	}
	// Make the rename itself durable before anything depends on it. Two
	// dependents: the caller (the engine truncates the WAL on the strength
	// of this snapshot, so an un-durable rename must surface as a failed
	// Save — truncating against a snapshot a crash could un-rename would
	// leave an unreplayable truncated log with no seed), and the cleanup
	// below (a crash must find either the old snapshot set or the new
	// file, never a directory whose only complete snapshot was unlinked
	// while the new entry was still in volatile metadata).
	d, err := os.Open(f.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: save %s: directory sync: %w", s.ID, err)
	}
	derr := d.Sync()
	if cerr := d.Close(); derr == nil {
		derr = cerr
	}
	if derr != nil {
		return fmt.Errorf("checkpoint: save %s: directory sync: %w", s.ID, derr)
	}
	// Older snapshots are now superseded by a complete durable one.
	seqs, err := f.sequences()
	if err != nil {
		return nil // the save itself succeeded; cleanup is best-effort
	}
	for _, n := range seqs {
		if n < s.Seq {
			os.Remove(f.pathOf(n))
		}
	}
	return nil
}

// Latest implements Store: the newest snapshot file that parses
// completely. Torn or unparsable files are skipped — a checkpoint the
// crash interrupted never becomes authoritative.
func (f *FileStore) Latest() (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	seqs, err := f.sequences()
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(f.pathOf(seqs[i]))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return nil, fmt.Errorf("checkpoint: read snapshot %d: %w", seqs[i], err)
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			continue // torn snapshot: previous one is authoritative
		}
		return &s, nil
	}
	return nil, nil
}
