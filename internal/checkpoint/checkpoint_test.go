package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adt"
	"repro/internal/wal"
)

func sampleSnapshot(id string, frontier int) *Snapshot {
	return &Snapshot{
		ID:       id,
		Frontier: wal.LSN(frontier),
		Objects: []ObjectSnapshot{
			{
				Obj:       "acct0",
				MarkerLSN: wal.LSN(frontier + 1),
				State:     "1000",
				Active: []ActiveTxn{
					{Txn: "T0001", Ops: []PendingOp{{Op: adt.DepositOk(3)}}},
				},
			},
		},
	}
}

// TestFileStoreRoundTrip: save/reload through the file store preserves the
// snapshot, newer snapshots supersede (and garbage-collect) older ones,
// and a reopened store continues the sequence.
func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s, err := fs.Latest(); err != nil || s != nil {
		t.Fatalf("empty store Latest = %v, %v", s, err)
	}
	if err := fs.Save(sampleSnapshot("CKPT0001", 10)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(sampleSnapshot("CKPT0002", 20)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.ID != "CKPT0002" || got.Frontier != 20 {
		t.Fatalf("Latest = %+v, want CKPT0002 at frontier 20", got)
	}
	if len(got.Objects) != 1 || got.Objects[0].Active[0].Ops[0].Op != adt.DepositOk(3) {
		t.Fatalf("object snapshot did not survive the round trip: %+v", got.Objects)
	}
	ents, _ := os.ReadDir(dir)
	files := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ckptSuffix {
			files++
		}
	}
	if files != 1 {
		t.Fatalf("store holds %d snapshot files, want 1 (older superseded)", files)
	}

	re, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Save(sampleSnapshot("CKPT0003", 30)); err != nil {
		t.Fatal(err)
	}
	got, err = re.Latest()
	if err != nil || got == nil || got.ID != "CKPT0003" {
		t.Fatalf("reopened store Latest = %+v, %v", got, err)
	}
	if got.Seq <= 2 {
		t.Fatalf("reopened store did not continue the sequence: seq %d", got.Seq)
	}
}

// TestTornSnapshotIgnored: a torn snapshot file — whether a leftover .tmp
// the rename never promoted or a renamed file with truncated contents —
// never becomes authoritative; Latest falls back to the newest complete
// snapshot.
func TestTornSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(sampleSnapshot("CKPT0001", 10)); err != nil {
		t.Fatal(err)
	}
	// A crash mid-save: the temporary exists, the rename never happened.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-000002.ckpt.tmp"), []byte(`{"id":"CK`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A sharper failure: the rename happened but the contents are torn.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-000003.ckpt"), []byte(`{"id":"CKPT0003","fr`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.ID != "CKPT0001" {
		t.Fatalf("Latest = %+v, want the previous complete CKPT0001", got)
	}
}

// TestCrashHookDropsSave: with the crash hook firing, Save reports success
// (the dying machine's view) but persists nothing.
func TestCrashHookDropsSave(t *testing.T) {
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(sampleSnapshot("CKPT0001", 10)); err != nil {
		t.Fatal(err)
	}
	fs.SetCrashHook(func(*Snapshot) bool { return true })
	if err := fs.Save(sampleSnapshot("CKPT0002", 20)); err != nil {
		t.Fatalf("crashed save must still report success, got %v", err)
	}
	got, err := fs.Latest()
	if err != nil || got == nil || got.ID != "CKPT0001" {
		t.Fatalf("Latest = %+v, %v; want the pre-crash CKPT0001", got, err)
	}
}

// TestMemStore: the in-memory store keeps only the newest snapshot.
func TestMemStore(t *testing.T) {
	ms := NewMemStore()
	if s, err := ms.Latest(); err != nil || s != nil {
		t.Fatalf("empty MemStore Latest = %v, %v", s, err)
	}
	if err := ms.Save(sampleSnapshot("CKPT0001", 10)); err != nil {
		t.Fatal(err)
	}
	if err := ms.Save(sampleSnapshot("CKPT0002", 20)); err != nil {
		t.Fatal(err)
	}
	s, err := ms.Latest()
	if err != nil || s == nil || s.ID != "CKPT0002" || s.Seq != 2 {
		t.Fatalf("Latest = %+v, %v", s, err)
	}
	if s.Object("acct0") == nil || s.Object("missing") != nil {
		t.Fatal("Object lookup wrong")
	}
}
