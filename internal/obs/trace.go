package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultTraceMaxEvents bounds the tracer's memory when no explicit cap
// is configured: at ~8 events per sampled transaction this retains on
// the order of 100k transactions.
const DefaultTraceMaxEvents = 1 << 20

// TraceEvent is one Chrome trace-event record ("trace event format",
// the JSON the chrome://tracing and Perfetto UIs load). Ph is "X" for a
// complete span (TS + Dur) and "i" for an instant. Timestamps and
// durations are microseconds, as the format requires; TID is the
// transaction sequence number (0 for process-scoped events) so each
// sampled transaction renders as its own row.
type TraceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
	S    string            `json:"s,omitempty"` // instant scope ("t" = thread)
}

// Tracer collects lifecycle events from sampled transactions. The hot
// path never touches it: unsampled transactions carry a nil *TxnTrace
// and every event call on nil returns immediately. Sampled
// transactions accumulate events locally (their own goroutine, no
// lock) and publish once, at termination, under the tracer mutex.
type Tracer struct {
	sampleAll bool
	threshold uint64
	seed      uint64
	maxEvents int

	mu      sync.Mutex
	events  []TraceEvent
	sampled int64
	dropped int64
}

func newTracer(rate float64, seed uint64, maxEvents int) *Tracer {
	t := &Tracer{seed: seed, maxEvents: maxEvents}
	if t.maxEvents <= 0 {
		t.maxEvents = DefaultTraceMaxEvents
	}
	if rate >= 1 {
		t.sampleAll = true
	} else {
		// rate in (0,1): threshold = rate * 2^64, compared against a
		// 64-bit hash. float64 has 53 bits of mantissa — far more
		// resolution than any sampling decision needs.
		t.threshold = uint64(rate * float64(1<<32) * float64(1<<32))
	}
	return t
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche 64-bit
// mixer, so consecutive sequence numbers sample independently.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sample returns an accumulator for the transaction iff its sequence
// number hashes under the threshold.
func (t *Tracer) sample(seq int64) *TxnTrace {
	if !t.sampleAll && splitmix64(t.seed^uint64(seq)) >= t.threshold {
		return nil
	}
	return &TxnTrace{t: t, tid: seq}
}

// global publishes one process-scoped span immediately.
func (t *Tracer) global(name string, startNS, endNS int64, args map[string]string) {
	ev := TraceEvent{
		Name: name, Ph: "X",
		TS: float64(startNS) / 1e3, Dur: float64(endNS-startNS) / 1e3,
		Args: args,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.maxEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Events returns a copy of the published events.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Stats returns (sampled transactions, published events, dropped
// events).
func (t *Tracer) Stats() (sampled int64, events int, dropped int64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sampled, len(t.events), t.dropped
}

// KindCounts returns how many events were published under each name —
// the "≥ N distinct event kinds" acceptance check and a cheap
// completeness probe.
func (t *Tracer) KindCounts() map[string]int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kinds := make(map[string]int)
	for _, ev := range t.events {
		kinds[ev.Name]++
	}
	return kinds
}

// chromeTrace is the file-level envelope the trace viewers load.
type chromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the collected events as a Chrome trace-event JSON
// document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// TxnTrace accumulates one sampled transaction's events. It is owned by
// the transaction's goroutine (the engine's single-goroutine-per-txn
// contract) until Finish publishes the batch. All methods are nil-safe:
// an unsampled transaction is a nil *TxnTrace.
type TxnTrace struct {
	t      *Tracer
	tid    int64
	events []TraceEvent
}

// Sampled reports whether events will actually be retained.
func (tt *TxnTrace) Sampled() bool { return tt != nil }

// Instant records a point event at tsNS (nanoseconds since the
// observer's epoch).
func (tt *TxnTrace) Instant(name string, tsNS int64, args map[string]string) {
	if tt == nil {
		return
	}
	tt.events = append(tt.events, TraceEvent{
		Name: name, Ph: "i", S: "t",
		TS: float64(tsNS) / 1e3, TID: tt.tid, Args: args,
	})
}

// Span records a complete [startNS, endNS) interval event.
func (tt *TxnTrace) Span(name string, startNS, endNS int64, args map[string]string) {
	if tt == nil {
		return
	}
	tt.events = append(tt.events, TraceEvent{
		Name: name, Ph: "X",
		TS: float64(startNS) / 1e3, Dur: float64(endNS-startNS) / 1e3,
		TID: tt.tid, Args: args,
	})
}

// Finish publishes the accumulated events to the tracer. Idempotent:
// the second call finds an empty batch. Events past the tracer cap are
// dropped (and counted), keeping memory bounded on long runs.
func (tt *TxnTrace) Finish() {
	if tt == nil || len(tt.events) == 0 {
		return
	}
	batch := tt.events
	tt.events = nil
	tr := tt.t
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.sampled++
	room := tr.maxEvents - len(tr.events)
	if room <= 0 {
		tr.dropped += int64(len(batch))
		return
	}
	if len(batch) > room {
		tr.dropped += int64(len(batch) - room)
		batch = batch[:room]
	}
	tr.events = append(tr.events, batch...)
}
