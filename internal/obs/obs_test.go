package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// The last bucket absorbs everything above its lower bound.
	if got := bucketOf(1 << 62); got != histBuckets-1 {
		t.Errorf("bucketOf(1<<62) = %d, want %d", got, histBuckets-1)
	}
}

func TestHistogramRecordSnapshot(t *testing.T) {
	var h Histogram
	vals := []int64{1, 2, 3, 100, 1000, 1000, 1 << 20, -7}
	var sum int64
	for _, v := range vals {
		h.Record(v)
		if v > 0 {
			sum += v
		}
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d (negatives clamp to 0)", s.Sum, sum)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	// Buckets are sorted ascending and non-empty.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].UpperBound <= s.Buckets[i-1].UpperBound {
			t.Fatalf("buckets not sorted: %+v", s.Buckets)
		}
	}
}

func TestHistogramMergeAndQuantile(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10) // bucket upper bound 16
	}
	for i := 0; i < 10; i++ {
		b.Record(100_000) // bucket upper bound 131072
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 110 {
		t.Fatalf("merged count = %d, want 110", m.Count)
	}
	if m.Sum != 100*10+10*100_000 {
		t.Fatalf("merged sum = %d", m.Sum)
	}
	if q := m.Quantile(0.5); q != 16 {
		t.Errorf("p50 = %d, want 16", q)
	}
	if q := m.Quantile(0.99); q != 131072 {
		t.Errorf("p99 = %d, want 131072", q)
	}
	if q := m.Quantile(0); q != 16 {
		t.Errorf("p0 = %d, want 16", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
	if got := empty.Merge(m).Count; got != 110 {
		t.Errorf("empty-merge count = %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

// TestNilObserverHooksAllocFree is the disabled-path proof: every hook
// on a nil Observer, and the enabled histogram record path, allocate
// nothing. E21 re-runs the same measurement through the sweep so the
// number lands in BENCH_engine.json.
func TestNilObserverHooksAllocFree(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(1000, func() {
		o.RecordLockWait(1)
		o.RecordWALStage(1)
		o.RecordBarrierWait(1, true)
		o.RecordCommitHold(1)
		o.RecordTxnEnd(1)
		o.RecordFlushBatch(1)
		o.RecordFlushDwell(1)
		o.RecordFlushSync(1)
		o.RecordCheckpoint(1, 1)
		if o.SampleTxn(1) != nil {
			t.Fatal("nil observer sampled a txn")
		}
		o.TraceGlobal("x", 0, 1, nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-observer hooks allocate %v/op, want 0", allocs)
	}
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(123) }); allocs != 0 {
		t.Fatalf("Histogram.Record allocates %v/op, want 0", allocs)
	}
	enabled := New(Options{})
	if allocs := testing.AllocsPerRun(1000, func() {
		enabled.RecordLockWait(1)
		enabled.RecordBarrierWait(1, false)
		enabled.RecordTxnEnd(1)
	}); allocs != 0 {
		t.Fatalf("enabled histogram hooks allocate %v/op, want 0", allocs)
	}
}

func TestSamplingDeterministicAndProportional(t *testing.T) {
	const n = 10_000
	count := func(rate float64, seed uint64) int {
		o := New(Options{SampleRate: rate, TraceSeed: seed})
		c := 0
		for seq := int64(0); seq < n; seq++ {
			if o.SampleTxn(seq) != nil {
				c++
			}
		}
		return c
	}
	if got := count(1, 7); got != n {
		t.Fatalf("rate 1 sampled %d/%d", got, n)
	}
	c := count(0.25, 7)
	if c < n/5 || c > n/3 {
		t.Fatalf("rate 0.25 sampled %d/%d, far from a quarter", c, n)
	}
	if c2 := count(0.25, 7); c2 != c {
		t.Fatalf("same seed sampled differently: %d vs %d", c, c2)
	}
	// Tracing off entirely at rate 0.
	o := New(Options{})
	if o.Tracing() || o.SampleTxn(3) != nil || o.Trace() != nil {
		t.Fatal("rate 0 should disable tracing")
	}
}

func TestTracerEventsAndJSON(t *testing.T) {
	o := New(Options{SampleRate: 1, TraceSeed: 1})
	tt := o.SampleTxn(42)
	if !tt.Sampled() {
		t.Fatal("rate-1 txn not sampled")
	}
	tt.Instant("begin", 1000, map[string]string{"txn": "t42"})
	tt.Span("block", 2000, 5000, map[string]string{"obj": "obj001", "holder": "t41"})
	tt.Instant("stage", 6000, map[string]string{"ticket": "9"})
	tt.Span("barrier", 7000, 9000, nil)
	tt.Instant("commit", 9500, nil)
	tt.Span("txn", 1000, 9500, map[string]string{"outcome": "commit"})
	tt.Finish()
	tt.Finish() // idempotent
	o.TraceGlobal("checkpoint", 0, 12_000, map[string]string{"objects": "4"})

	sampled, events, dropped := o.Trace().Stats()
	if sampled != 1 || events != 7 || dropped != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 7, 0)", sampled, events, dropped)
	}
	kinds := o.Trace().KindCounts()
	if len(kinds) < 5 {
		t.Fatalf("only %d event kinds: %v", len(kinds), kinds)
	}

	var buf bytes.Buffer
	if err := o.Trace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not load: %v", err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("round-tripped %d events, want 7", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			t.Fatalf("event %q has ph %q", ev.Name, ev.Ph)
		}
	}
	// The block span's duration is microseconds: (5000-2000) ns = 3 us.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "block" && ev.Dur != 3 {
			t.Fatalf("block dur = %v us, want 3", ev.Dur)
		}
	}
}

func TestTracerCapDropsNotGrows(t *testing.T) {
	o := New(Options{SampleRate: 1, TraceMaxEvents: 3})
	tt := o.SampleTxn(1)
	for i := 0; i < 5; i++ {
		tt.Instant("e", int64(i), nil)
	}
	tt.Finish()
	o.TraceGlobal("g", 0, 1, nil)
	sampled, events, dropped := o.Trace().Stats()
	if events != 3 || dropped != 3 || sampled != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 3, 3)", sampled, events, dropped)
	}
}

func TestSnapshotWriters(t *testing.T) {
	o := New(Options{SampleRate: 1})
	o.RecordLockWait(1500)
	o.RecordTxnEnd(40_000)
	tt := o.SampleTxn(1)
	tt.Instant("begin", 0, nil)
	tt.Finish()
	sampled, events, _ := o.Trace().Stats()
	s := Snapshot{
		Policy:   "release-early-tracked",
		Pipeline: "sharded",
		Shards:   8,
		Engine:   EngineCounters{Begins: 10, Commits: 9, Aborts: 1, CommitHoldNS: 900, MeanCommitHoldNS: 100},
		WAL:      WALStats{Flushes: 3, Records: 42, DurableLSN: 42},
		Phases:   o.Phases(),
		Trace:    &TraceStats{Sampled: sampled, Events: events, Kinds: len(o.Trace().KindCounts())},
	}
	var jbuf bytes.Buffer
	if err := s.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not load: %v", err)
	}
	if back.Engine.Commits != 9 || back.Phases == nil || back.Phases.LockWait.Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	var tbuf bytes.Buffer
	if err := s.WriteText(&tbuf); err != nil {
		t.Fatal(err)
	}
	text := tbuf.String()
	for _, want := range []string{
		"engine.policy release-early-tracked",
		"engine.commits 9",
		"wal.durable_lsn 42",
		"phase.lock_wait_ns count=1",
		"trace.sampled_txns 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, text)
		}
	}
}
