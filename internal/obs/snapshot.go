package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is the unified introspection view: everything the engine can
// say about itself — configuration labels, lifecycle counters, WAL
// accounting, checkpoint state, phase histograms, trace statistics, and
// (when a restart ran) the recovery stats — in one JSON-encodable
// struct. txn.Engine.ObsSnapshot assembles it; the sweeps in
// internal/sim and the exporters read it instead of hand-harvesting
// individual counters.
type Snapshot struct {
	// Policy, Pipeline, and Discipline label the engine configuration
	// the numbers were measured under, so a snapshot is self-describing
	// (the per-policy CommitHold surfacing E16/E20 used to recompute).
	Policy     string `json:"policy"`
	Pipeline   string `json:"pipeline"`
	Discipline string `json:"discipline,omitempty"`
	Shards     int    `json:"shards"`

	Engine     EngineCounters  `json:"engine"`
	WAL        WALStats        `json:"wal"`
	Checkpoint CheckpointStats `json:"checkpoint"`

	// Phases is nil when the engine ran without an Observer.
	Phases *PhaseSnapshot `json:"phases,omitempty"`
	// Trace is nil unless sampled tracing was enabled.
	Trace *TraceStats `json:"trace,omitempty"`

	// Restart carries a recovery.RestartStats when the harness performed
	// a crash restart. The field is typed any because obs is a leaf
	// package (recovery imports wal; wal imports obs) — the JSON
	// encoding is what consumers contract on.
	Restart any `json:"restart,omitempty"`
}

// EngineCounters mirrors txn.Metrics at one read point, plus the
// derived per-commit hold mean the sweeps used to compute externally.
type EngineCounters struct {
	Begins             int64 `json:"begins"`
	Commits            int64 `json:"commits"`
	Aborts             int64 `json:"aborts"`
	Deadlocks          int64 `json:"deadlocks"`
	Operations         int64 `json:"operations"`
	Blocked            int64 `json:"blocked"`
	BlockEvents        int64 `json:"block_events"`
	NotEnabled         int64 `json:"not_enabled"`
	DurabilityFailures int64 `json:"durability_failures"`
	DependencyStalls   int64 `json:"dependency_stalls"`
	DurabilityAborts   int64 `json:"durability_aborts"`
	CommitHoldNS       int64 `json:"commit_hold_ns"`
	RegistryLockAcqs   int64 `json:"registry_lock_acqs"`
	// MeanCommitHoldNS is CommitHoldNS / Commits — the per-policy
	// commit-hold figure, surfaced here so sweeps read it instead of
	// recomputing.
	MeanCommitHoldNS float64 `json:"mean_commit_hold_ns"`
}

// WALStats mirrors wal.Log.Stats() (obs cannot import wal; the engine
// converts). All fields are read under the log's single sequence point,
// so no cross-field tearing.
type WALStats struct {
	Flushes               int64  `json:"flushes"`
	FlushedRecords        int64  `json:"flushed_records"`
	StripeAcquisitions    int64  `json:"stripe_acquisitions"`
	DurableLSN            uint64 `json:"durable_lsn"`
	Records               int    `json:"records"`
	Bytes                 int64  `json:"bytes"`
	Base                  uint64 `json:"base"`
	Discipline            string `json:"discipline,omitempty"`
	TruncBytesRewritten   int64  `json:"trunc_bytes_rewritten"`
	TruncSegmentsUnlinked int    `json:"trunc_segments_unlinked"`
	TruncSegmentsRetained int    `json:"trunc_segments_retained"`
	Err                   string `json:"err,omitempty"`
}

// CheckpointStats is the engine's checkpoint progress.
type CheckpointStats struct {
	Completed        int64 `json:"completed"`
	TruncatedRecords int64 `json:"truncated_records"`
}

// TraceStats summarizes the tracer without embedding the events.
type TraceStats struct {
	Sampled int64 `json:"sampled_txns"`
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped"`
	Kinds   int   `json:"kinds"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot in an expvar-style flat text form: one
// "dotted.path value" line per scalar, histograms as
// "count mean p50<= p99<=" summaries. The line set is fixed and
// explicitly ordered — no map iteration feeds output.
func (s Snapshot) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("engine.policy %s\n", s.Policy)
	p("engine.pipeline %s\n", s.Pipeline)
	if s.Discipline != "" {
		p("engine.discipline %s\n", s.Discipline)
	}
	p("engine.shards %d\n", s.Shards)
	p("engine.begins %d\n", s.Engine.Begins)
	p("engine.commits %d\n", s.Engine.Commits)
	p("engine.aborts %d\n", s.Engine.Aborts)
	p("engine.deadlocks %d\n", s.Engine.Deadlocks)
	p("engine.operations %d\n", s.Engine.Operations)
	p("engine.blocked %d\n", s.Engine.Blocked)
	p("engine.block_events %d\n", s.Engine.BlockEvents)
	p("engine.not_enabled %d\n", s.Engine.NotEnabled)
	p("engine.durability_failures %d\n", s.Engine.DurabilityFailures)
	p("engine.dependency_stalls %d\n", s.Engine.DependencyStalls)
	p("engine.durability_aborts %d\n", s.Engine.DurabilityAborts)
	p("engine.commit_hold_ns %d\n", s.Engine.CommitHoldNS)
	p("engine.mean_commit_hold_ns %.0f\n", s.Engine.MeanCommitHoldNS)
	p("engine.registry_lock_acqs %d\n", s.Engine.RegistryLockAcqs)
	p("wal.flushes %d\n", s.WAL.Flushes)
	p("wal.flushed_records %d\n", s.WAL.FlushedRecords)
	p("wal.stripe_acquisitions %d\n", s.WAL.StripeAcquisitions)
	p("wal.durable_lsn %d\n", s.WAL.DurableLSN)
	p("wal.records %d\n", s.WAL.Records)
	p("wal.bytes %d\n", s.WAL.Bytes)
	p("wal.base %d\n", s.WAL.Base)
	if s.WAL.Discipline != "" {
		p("wal.discipline %s\n", s.WAL.Discipline)
	}
	p("wal.trunc_bytes_rewritten %d\n", s.WAL.TruncBytesRewritten)
	p("wal.trunc_segments_unlinked %d\n", s.WAL.TruncSegmentsUnlinked)
	if s.WAL.Err != "" {
		p("wal.err %s\n", s.WAL.Err)
	}
	p("checkpoint.completed %d\n", s.Checkpoint.Completed)
	p("checkpoint.truncated_records %d\n", s.Checkpoint.TruncatedRecords)
	if ph := s.Phases; ph != nil {
		hist := func(name string, h HistogramSnapshot) {
			p("phase.%s count=%d mean=%.0f p50<=%d p99<=%d\n",
				name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
		}
		hist("lock_wait_ns", ph.LockWait)
		hist("wal_stage_ns", ph.WALStage)
		hist("barrier_wait_ns", ph.BarrierWait)
		hist("stall_wait_ns", ph.StallWait)
		hist("commit_hold_ns", ph.CommitHold)
		hist("txn_e2e_ns", ph.TxnE2E)
		hist("flush_batch_records", ph.FlushBatch)
		hist("flush_dwell_ns", ph.FlushDwell)
		hist("flush_sync_ns", ph.FlushSync)
		hist("ckpt_capture_ns", ph.CkptCapture)
		hist("ckpt_save_ns", ph.CkptSave)
	}
	if t := s.Trace; t != nil {
		p("trace.sampled_txns %d\n", t.Sampled)
		p("trace.events %d\n", t.Events)
		p("trace.dropped %d\n", t.Dropped)
		p("trace.kinds %d\n", t.Kinds)
	}
	return err
}
