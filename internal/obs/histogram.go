package obs

import (
	"math/bits"
	"sync/atomic"
)

const (
	// histBuckets is the bucket count: bucket 0 holds values <= 0 (and
	// 1), bucket i holds [2^(i-1), 2^i), and the last bucket absorbs
	// everything above — 2^46 ns is ~20 hours, beyond any phase this
	// engine measures.
	histBuckets = 48
	// histShards spreads recording across cache lines so concurrent
	// committers do not serialize on one counter word. Power of two.
	histShards = 4
)

// Histogram is a lock-free, sharded, power-of-two-bucket histogram.
// Record is wait-free (three atomic adds) and allocation-free; Snapshot
// merges the shards into one immutable view. The zero value is ready to
// use. Values are nanoseconds for latency histograms and plain counts
// for size histograms — the type does not care.
//
// Concurrent snapshots are approximate (counts race with in-flight
// Records shard by shard); at quiescence they are exact. That is the
// same contract the engine's atomic counters already carry.
type Histogram struct {
	shards [histShards]histShard
}

// histShard pads to its own cache lines via the bucket array itself;
// recording picks a shard from a hash of the value so the choice is
// deterministic (no RNG, no per-CPU state) yet spreads distinct values.
type histShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Record adds one observation. Negative values clamp to bucket 0 with a
// zero sum contribution — a defensive guard; the engine never reports
// negative durations.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	// Fibonacci-hash the value to a shard: deterministic, and distinct
	// magnitudes land on distinct shards often enough to split traffic.
	sh := &h.shards[(uint64(v)*0x9E3779B97F4A7C15)>>(64-2)]
	sh.count.Add(1)
	sh.sum.Add(v)
	sh.buckets[bucketOf(v)].Add(1)
}

// BucketCount is one non-empty histogram bucket: Count observations in
// [UpperBound/2, UpperBound), with the first bucket covering (-inf, 2)
// and the last covering everything above its lower bound.
type BucketCount struct {
	UpperBound int64 `json:"upper"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is an immutable merged view of a Histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// upperBound returns bucket i's exclusive upper bound.
func upperBound(i int) int64 {
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // MaxInt64 without overflow
	}
	return int64(1) << uint(i)
}

// Snapshot merges the shards into one view, dropping empty buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var merged [histBuckets]int64
	var s HistogramSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		for b := range sh.buckets {
			merged[b] += sh.buckets[b].Load()
		}
	}
	for b, c := range merged {
		if c != 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperBound: upperBound(b), Count: c})
		}
	}
	return s
}

// Merge combines two snapshots (e.g. the same phase across engines)
// into a new snapshot; the receivers are unchanged.
func (s HistogramSnapshot) Merge(t HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + t.Count, Sum: s.Sum + t.Sum}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(t.Buckets) {
		switch {
		case j >= len(t.Buckets) || (i < len(s.Buckets) && s.Buckets[i].UpperBound < t.Buckets[j].UpperBound):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || t.Buckets[j].UpperBound < s.Buckets[i].UpperBound:
			out.Buckets = append(out.Buckets, t.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, BucketCount{
				UpperBound: s.Buckets[i].UpperBound,
				Count:      s.Buckets[i].Count + t.Buckets[j].Count,
			})
			i++
			j++
		}
	}
	return out
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (nearest-rank over bucket counts), for q in [0, 1]. The
// answer is an upper bound with power-of-two resolution — exactly what
// a latency histogram can honestly claim.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count-1)) + 1
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.UpperBound
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// PhaseSnapshot is every engine-phase histogram, merged, as one
// JSON-encodable block of the unified snapshot.
type PhaseSnapshot struct {
	LockWait    HistogramSnapshot `json:"lock_wait_ns"`
	WALStage    HistogramSnapshot `json:"wal_stage_ns"`
	BarrierWait HistogramSnapshot `json:"barrier_wait_ns"`
	StallWait   HistogramSnapshot `json:"stall_wait_ns"`
	CommitHold  HistogramSnapshot `json:"commit_hold_ns"`
	TxnE2E      HistogramSnapshot `json:"txn_e2e_ns"`
	FlushBatch  HistogramSnapshot `json:"flush_batch_records"`
	FlushDwell  HistogramSnapshot `json:"flush_dwell_ns"`
	FlushSync   HistogramSnapshot `json:"flush_sync_ns"`
	CkptCapture HistogramSnapshot `json:"ckpt_capture_ns"`
	CkptSave    HistogramSnapshot `json:"ckpt_save_ns"`
}
