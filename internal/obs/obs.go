// Package obs is the engine's observability layer: phase-latency
// histograms, sampled transaction-lifecycle tracing, and the unified
// introspection snapshot every sweep and exporter reads.
//
// The package is a leaf — it imports only the standard library, and the
// engine packages (internal/txn, internal/wal, internal/checkpoint)
// import it, never the reverse. Two disciplines follow from where it
// sits:
//
//   - obs never reads a clock and never draws randomness. Every duration
//     and timestamp arrives as int64 nanoseconds computed by the caller
//     (the engine packages are outside detreplay's scope; obs is inside
//     it), and trace sampling is a deterministic splitmix64 hash of the
//     transaction sequence number against a threshold — so enabling
//     tracing perturbs no workload RNG stream and replays stay
//     bit-identical.
//
//   - every hook is safe on a nil *Observer and costs one predicted
//     branch there. The engine holds a possibly-nil observer and calls
//     hooks unconditionally on cold paths, or nil-gates first on hot
//     paths to also skip the clock read. E21 proves the disabled path
//     allocates nothing with testing.AllocsPerRun — a counter proof,
//     not a timing claim.
package obs

import "time"

// Options configures an Observer.
type Options struct {
	// Epoch anchors trace timestamps: callers report event times as
	// nanoseconds since Epoch (time.Since(Epoch) at the call site). The
	// zero value still yields a valid trace — timestamps are then huge
	// but internally consistent. obs itself never reads the clock; the
	// constructor's caller supplies the anchor.
	Epoch time.Time
	// SampleRate is the fraction of transactions traced, in [0, 1].
	// Zero disables tracing entirely (histograms stay on); 1 traces
	// every transaction. Sampling is a deterministic hash of the
	// transaction sequence number, not a draw from any RNG.
	SampleRate float64
	// TraceSeed perturbs the sampling hash so distinct runs can sample
	// distinct transaction subsets while each run stays deterministic.
	TraceSeed uint64
	// TraceMaxEvents caps the tracer's retained event count (0 =
	// DefaultTraceMaxEvents). Events past the cap are counted as
	// dropped, never silently lost.
	TraceMaxEvents int
}

// Observer is the hub the engine reports into: one histogram per engine
// phase plus an optional sampled tracer. All hook methods are nil-safe
// — a nil *Observer is the disabled observability layer, and every hook
// returns immediately without touching memory.
type Observer struct {
	// Epoch is Options.Epoch; engine packages read it to convert wall
	// times into trace-relative nanoseconds.
	Epoch time.Time

	// Per-transaction phase histograms (nanoseconds).
	LockWait    Histogram // time blocked waiting for a conflicting lock
	WALStage    Histogram // staging commit records into WAL stripes
	BarrierWait Histogram // the commit flush barrier (dwell + sync)
	StallWait   Histogram // barrier waits of dependency-stalled commits
	CommitHold  Histogram // lock hold inside Commit (mirrors CommitHoldNS)
	TxnE2E      Histogram // begin-to-terminal end-to-end latency

	// Flusher histograms (batch size is a count, not nanoseconds).
	FlushBatch Histogram // records per durable flush batch
	FlushDwell Histogram // flusher dwell before a timed flush
	FlushSync  Histogram // backend sync duration per flush

	// Checkpoint histograms.
	CkptCapture Histogram // registry capture walk duration
	CkptSave    Histogram // durable-wait + snapshot-save duration

	tracer *Tracer
}

// New builds an Observer from opts; tracing is created only when
// opts.SampleRate > 0.
func New(opts Options) *Observer {
	o := &Observer{Epoch: opts.Epoch}
	if opts.SampleRate > 0 {
		o.tracer = newTracer(opts.SampleRate, opts.TraceSeed, opts.TraceMaxEvents)
	}
	return o
}

// RecordLockWait records one blocked-lock wait of ns nanoseconds.
func (o *Observer) RecordLockWait(ns int64) {
	if o == nil {
		return
	}
	o.LockWait.Record(ns)
}

// RecordWALStage records one commit's WAL staging time.
func (o *Observer) RecordWALStage(ns int64) {
	if o == nil {
		return
	}
	o.WALStage.Record(ns)
}

// RecordBarrierWait records one commit's flush-barrier wait; stalled
// commits (those that waited on a dependency's durability, the
// DependencyStalls population) are additionally recorded in StallWait,
// so the stall count gained a duration distribution.
func (o *Observer) RecordBarrierWait(ns int64, stalled bool) {
	if o == nil {
		return
	}
	o.BarrierWait.Record(ns)
	if stalled {
		o.StallWait.Record(ns)
	}
}

// RecordCommitHold records one commit's lock-hold duration.
func (o *Observer) RecordCommitHold(ns int64) {
	if o == nil {
		return
	}
	o.CommitHold.Record(ns)
}

// RecordTxnEnd records one transaction's end-to-end latency.
func (o *Observer) RecordTxnEnd(ns int64) {
	if o == nil {
		return
	}
	o.TxnE2E.Record(ns)
}

// RecordFlushBatch records one durable flush's batch size (records).
func (o *Observer) RecordFlushBatch(n int64) {
	if o == nil {
		return
	}
	o.FlushBatch.Record(n)
}

// RecordFlushDwell records one flusher dwell duration.
func (o *Observer) RecordFlushDwell(ns int64) {
	if o == nil {
		return
	}
	o.FlushDwell.Record(ns)
}

// RecordFlushSync records one backend sync duration.
func (o *Observer) RecordFlushSync(ns int64) {
	if o == nil {
		return
	}
	o.FlushSync.Record(ns)
}

// RecordCheckpoint records one checkpoint's capture-walk and save
// durations.
func (o *Observer) RecordCheckpoint(captureNS, saveNS int64) {
	if o == nil {
		return
	}
	o.CkptCapture.Record(captureNS)
	o.CkptSave.Record(saveNS)
}

// Tracing reports whether lifecycle tracing is enabled. Callers use it
// to skip building event argument maps when no tracer will consume
// them.
func (o *Observer) Tracing() bool {
	return o != nil && o.tracer != nil
}

// SampleTxn decides whether the transaction with the given sequence
// number is traced, returning its event accumulator or nil. The
// decision is splitmix64(seed ^ seq) against the sample-rate threshold
// — deterministic per (seed, seq), independent of every workload RNG.
func (o *Observer) SampleTxn(seq int64) *TxnTrace {
	if o == nil || o.tracer == nil {
		return nil
	}
	return o.tracer.sample(seq)
}

// TraceGlobal emits a process-scoped span (tid 0) — checkpoints and
// other non-transaction activity. No-op unless tracing is enabled.
func (o *Observer) TraceGlobal(name string, startNS, endNS int64, args map[string]string) {
	if o == nil || o.tracer == nil {
		return
	}
	o.tracer.global(name, startNS, endNS, args)
}

// Trace returns the tracer for export, or nil when tracing is off.
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Phases returns a merged snapshot of every phase histogram.
func (o *Observer) Phases() *PhaseSnapshot {
	if o == nil {
		return nil
	}
	return &PhaseSnapshot{
		LockWait:    o.LockWait.Snapshot(),
		WALStage:    o.WALStage.Snapshot(),
		BarrierWait: o.BarrierWait.Snapshot(),
		StallWait:   o.StallWait.Snapshot(),
		CommitHold:  o.CommitHold.Snapshot(),
		TxnE2E:      o.TxnE2E.Snapshot(),
		FlushBatch:  o.FlushBatch.Snapshot(),
		FlushDwell:  o.FlushDwell.Snapshot(),
		FlushSync:   o.FlushSync.Snapshot(),
		CkptCapture: o.CkptCapture.Snapshot(),
		CkptSave:    o.CkptSave.Snapshot(),
	}
}
