// Command commtable regenerates the paper's commutativity artifacts from
// the serial specifications: Figure 6.1 (forward commutativity for the bank
// account), Figure 6.2 (right backward commutativity), the Table I
// automaton analysis (Section 8.2.2.3), and derived NFC/NRBC/RW tables for
// any registered abstract data type.
//
// Usage:
//
//	commtable -fig 6.1          # Figure 6.1
//	commtable -fig 6.2          # Figure 6.2
//	commtable -table1           # Table I analysis
//	commtable -type int-set     # derived tables for a type
//	commtable -all              # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/spec"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 6.1 or 6.2")
	table1 := flag.Bool("table1", false, "analyze the Table I automaton")
	typeName := flag.String("type", "", "print derived NFC/NRBC/RW tables for a type: bank-account, int-set, fifo-queue, kv-store, register, resource-pool, escrow-counter")
	all := flag.Bool("all", false, "print everything")
	flag.Parse()

	ran := false
	if *all || *fig == "6.1" {
		printFig61()
		ran = true
	}
	if *all || *fig == "6.2" {
		printFig62()
		ran = true
	}
	if *all || *table1 {
		printTable1()
		ran = true
	}
	if *typeName != "" {
		if err := printType(*typeName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ran = true
	} else if *all {
		for _, n := range []string{"bank-account", "int-set", "fifo-queue", "kv-store", "register", "resource-pool", "escrow-counter"} {
			if err := printType(n); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if !ran && !*all {
		flag.Usage()
		os.Exit(2)
	}
}

// figureOps is the row/column operation set of Figures 6.1 and 6.2, with
// the representative amounts i = j = 2 and balance 2 (the generic case: all
// symbolic entries of the figures are realizable at these values).
func figureOps() []spec.Operation {
	return []spec.Operation{
		adt.DepositOk(2), adt.WithdrawOk(2), adt.WithdrawNo(2), adt.BalanceIs(2),
	}
}

func printFig61() {
	ba := adt.DefaultBankAccount()
	c := ba.Checker()
	derived := commute.BuildTable(
		"Figure 6.1 — forward commutativity for the bank account (x = does NOT commute forward)",
		c.NFCRelation(), figureOps())
	fmt.Println(derived.Render())
	check := commute.BuildTable("", ba.NFC(), figureOps())
	fmt.Printf("derived-from-spec matches the closed-form relation: %v\n\n", derived.Equal(check))
}

func printFig62() {
	ba := adt.DefaultBankAccount()
	c := ba.Checker()
	derived := commute.BuildTable(
		"Figure 6.2 — right backward commutativity for the bank account (x = row does NOT right-commute-backward with column)",
		c.NRBCRelation(), figureOps())
	fmt.Println(derived.Render())
	check := commute.BuildTable("", ba.NRBC(), figureOps())
	fmt.Printf("derived-from-spec matches the closed-form relation: %v\n\n", derived.Equal(check))
}

func printTable1() {
	fmt.Println("Table I — six-state automaton with a partial invocation K (Section 8.2.2.3)")
	fmt.Println()
	fmt.Println("  state   I(s)   J(s)   K(s)")
	rows := [][4]string{
		{"0", "1", "2", "-"},
		{"1", "3", "4", "-"},
		{"2", "5", "3", "-"},
		{"3", "3", "3", "-"},
		{"4", "3", "3", "4"},
		{"5", "3", "3", "-"},
	}
	for _, r := range rows {
		fmt.Printf("  %5s  %5s  %5s  %5s\n", r[0], r[1], r[2], r[3])
	}
	fmt.Println()
	c := commute.NewChecker(adt.TableISpec())
	ji := spec.Seq{adt.OpJR, adt.OpIQ}
	ij := spec.Seq{adt.OpIQ, adt.OpJR}
	fmt.Printf("I total & deterministic:   %v\n", c.Total(adt.InvI) && c.Deterministic(adt.InvI))
	fmt.Printf("J total & deterministic:   %v\n", c.Total(adt.InvJ) && c.Deterministic(adt.InvJ))
	fmt.Printf("K total:                   %v (partial)\n", c.Total(adt.InvK))
	fmt.Printf("state 5 looks like 4:      %v\n", c.LooksLike(ji, ij))
	fmt.Printf("state 4 looks like 5:      %v\n", c.LooksLike(ij, ji))
	fmt.Printf("I right-commutes-bwd w/ J: %v\n", c.RightCommutesBackward(adt.OpIQ, adt.OpJR))
	fmt.Printf("J right-commutes-bwd w/ I: %v\n", c.RightCommutesBackward(adt.OpJR, adt.OpIQ))
	ci, err := c.CI(adt.InvI, adt.InvJ)
	if err != nil {
		fmt.Printf("CI(I,J): error: %v\n", err)
	} else {
		fmt.Printf("(I,J) in CI:               %v (non-local effect of K)\n", ci)
	}
	fmt.Println()
}

func typeByName(name string) (adt.Type, bool) {
	switch name {
	case "bank-account":
		return adt.DefaultBankAccount(), true
	case "int-set":
		return adt.DefaultIntSet(), true
	case "fifo-queue":
		return adt.DefaultFIFOQueue(), true
	case "kv-store":
		return adt.DefaultKVStore(), true
	case "register":
		return adt.DefaultRegister(), true
	case "resource-pool":
		return adt.DefaultResourcePool(), true
	case "escrow-counter":
		return adt.DefaultEscrowCounter(), true
	}
	return nil, false
}

func printType(name string) error {
	ty, ok := typeByName(name)
	if !ok {
		return fmt.Errorf("commtable: unknown type %q", name)
	}
	sp := ty.Spec()
	ops := sp.Alphabet()
	if len(ops) > 12 {
		ops = ops[:12] // keep tables readable; full relations are in code
	}
	for _, rel := range []commute.Relation{ty.NFC(), ty.NRBC(), ty.RW()} {
		t := commute.BuildTable(fmt.Sprintf("%s over %s", rel.Name(), name), rel, ops)
		fmt.Println(t.Render())
	}
	return nil
}
