// Command ccbench runs the experiment suite of EXPERIMENTS.md: the
// deterministic conflict-mass sweep (the trade-off curve between
// update-in-place and deferred-update recovery), the engine-level banking
// and resource-pool workloads under every scheduler pairing, the recovery
// cost profile, the engine scaling sweep (shard count × GOMAXPROCS ×
// operation mix — update-heavy and read-mostly — on the wide-object
// workload), the group-commit flush sweep (flusher dwell × simulated
// sync latency against the asynchronous WAL), the lock-release-policy
// sweep (release policy × sync latency × contention skew — the measured
// cost of commit-ordered lock release), and the checkpointed-restart
// sweep (restart time and replayed-record count versus log length with
// fuzzy checkpointing off/on), the segmented-restart sweep (truncation
// cost and parallel two-pass restart across WAL backend × segment size ×
// restart parallelism), the logging-discipline sweep (log bytes per
// commit, commit hold, and restart work under undo logging versus
// REDO-only dependency logging, per WAL backend), and the commit-pipeline
// sweep (the sharded, commit-LSN-ordered commit pipeline over the
// copy-on-write registry versus the legacy sequential sweep over the
// locked registry, measured by lock-acquisition counts), and the
// observability sweep (the cost of the obs layer itself: disabled-path
// allocations, byte-identical sampled replay, and trace/histogram
// coverage under the full concurrent workload).
//
// Usage:
//
//	ccbench                            # full suite at default sizes
//	ccbench -quick                     # reduced sizes
//	ccbench -experiment mass           # one of: mass, banking, pool, recovery, scaling, flush, release, checkpoint, restart, redo, pipeline, obs
//	ccbench -experiment scaling,flush  # a comma-separated subset
//	ccbench -shards 8                  # fix the engine shard count (0 = sweep 1..16)
//	ccbench -json                      # also write BENCH_engine.json (scaling/flush/release/checkpoint/restart/redo/pipeline/obs points)
//	ccbench -experiment obs -trace trace.json -obs-snapshot snap.json
//	                                   # export the Chrome trace and unified snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/txn"
)

// benchJSONPath is where -json writes the machine-readable sweep points,
// tracking the engine's perf trajectory across PRs.
const benchJSONPath = "BENCH_engine.json"

var (
	flagShards = flag.Int("shards", 0, "engine shard count for the scaling experiment (0 = sweep 1,2,4,8,16)")
	flagJSON   = flag.Bool("json", false, "write scaling, flush, and release results to "+benchJSONPath)
	flagTrace  = flag.String("trace", "", "write the obs experiment's Chrome trace-event JSON to this path (loadable in chrome://tracing or Perfetto)")
	flagObs    = flag.String("obs-snapshot", "", "write the obs experiment's unified introspection snapshot (JSON) to this path")
)

// experimentOrder is the single source of truth for experiment names and
// their run order; the flag help, the validation set, and the usage error
// all derive from it.
var experimentOrder = []struct {
	name string
	run  func(bool)
}{
	{"mass", massExperiment},
	{"banking", bankingExperiment},
	{"pool", poolExperiment},
	{"recovery", recoveryExperiment},
	{"scaling", scalingExperiment},
	{"flush", flushExperiment},
	{"release", releaseExperiment},
	{"checkpoint", checkpointExperiment},
	{"restart", restartExperiment},
	{"redo", redoExperiment},
	{"pipeline", pipelineExperiment},
	{"obs", obsExperiment},
}

func experimentNames() string {
	names := make([]string, len(experimentOrder))
	for i, e := range experimentOrder {
		names[i] = e.name
	}
	return strings.Join(names, ", ")
}

// benchDoc is the BENCH_engine.json schema: one section per machine-
// readable sweep. Sections not exercised by the selected experiments are
// omitted.
type benchDoc struct {
	Scaling    []sim.ScalingPoint    `json:"scaling,omitempty"`
	Flush      []sim.FlushPoint      `json:"flush,omitempty"`
	Release    []sim.ReleasePoint    `json:"release,omitempty"`
	Checkpoint []sim.CheckpointPoint `json:"checkpoint,omitempty"`
	Restart    []sim.RestartPoint    `json:"restart,omitempty"`
	Redo       []sim.RedoPoint       `json:"redo,omitempty"`
	Pipeline   []sim.PipelinePoint   `json:"pipeline,omitempty"`
	Obs        []sim.ObsPoint        `json:"obs,omitempty"`
}

var benchOut benchDoc

func main() {
	quick := flag.Bool("quick", false, "run reduced sizes")
	experiment := flag.String("experiment", "", "run selected experiments (comma-separated): "+experimentNames())
	flag.Parse()

	known := map[string]bool{}
	for _, e := range experimentOrder {
		known[e.name] = true
	}
	selected := map[string]bool{}
	if *experiment != "" {
		for _, name := range strings.Split(*experiment, ",") {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q (valid: %s)\n", name, experimentNames())
				flag.Usage()
				os.Exit(2)
			}
			selected[name] = true
		}
	}
	for _, e := range experimentOrder {
		if len(selected) == 0 || selected[e.name] {
			e.run(*quick)
		}
	}
	if *flagJSON {
		writeBenchJSON()
	}
}

func writeBenchJSON() {
	// The file is a committed artifact holding every sweep's latest points;
	// running a subset of experiments must not discard the others' data, so
	// merge section-wise over whatever is already recorded. The merge is
	// generic over the benchDoc schema (via its JSON encoding): adding a
	// sweep is one struct field plus one experiment function, with no
	// bespoke merge/empty-check/summary code to keep in step.
	cur, err := json.Marshal(benchOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	var fresh map[string]json.RawMessage
	_ = json.Unmarshal(cur, &fresh) // omitempty drops unexercised sections
	if len(fresh) == 0 {
		fmt.Fprintf(os.Stderr, "ccbench: -json applies to the machine-readable sweeps (see benchDoc); no %s written\n", benchJSONPath)
		return
	}
	merged := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(benchJSONPath); err == nil {
		_ = json.Unmarshal(prev, &merged)
	}
	for k, v := range fresh {
		merged[k] = v
	}
	f, err := os.Create(benchJSONPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	var parts []string
	for _, k := range sortedKeys(merged) {
		var arr []json.RawMessage
		_ = json.Unmarshal(merged[k], &arr)
		parts = append(parts, fmt.Sprintf("%d %s", len(arr), k))
	}
	fmt.Printf("wrote %s points to %s\n", strings.Join(parts, " + "), benchJSONPath)
}

func sortedKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pipelineExperiment measures the commit-pipeline refactor (E20): the
// banking workload under moderate zipf skew runs once per arm — the
// legacy sequential commit sweep over the lock-guarded registry versus
// the sharded, commit-LSN-ordered pipeline over the copy-on-write
// registry — under each release policy. Wall-clock columns on a 1-vCPU
// box are ordinal only; the machine-independent signals are the lock
// acquisition counters: registry lock acquisitions per operation (zero in
// the CoW arm — the lock-free read path's acceptance criterion) and WAL
// staging-stripe acquisitions per commit (batch staging merges a shard's
// per-object commit records into one acquisition), plus the commit-time
// lock hold and dependency-stall counts the ordered release affects.
func pipelineExperiment(quick bool) {
	cfg := sim.DefaultPipelineConfig()
	policies := []txn.ReleasePolicy{txn.ReleaseEarlyTracked, txn.ReleaseAfterAck}
	if quick {
		cfg.TxnsPerWorker = 30
		policies = policies[:1]
	}
	pts, err := sim.PipelineSweep(sim.UIPNRBC, cfg, policies)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sim.RenderPipelineTable(
		fmt.Sprintf("E20 — commit-pipeline sweep, %d accounts, %d workers, zipf %.1f, dwell %dus, GOMAXPROCS=%d (pipeline × registry × release policy)",
			cfg.Objects, cfg.Workers, cfg.ZipfS, cfg.BatchInterval.Microseconds(), runtime.GOMAXPROCS(0)), pts))
	fmt.Println("shape: the CoW registry's reg-acq/op column is exactly zero (the legacy arm")
	fmt.Println("pays several per operation — lookup on invoke plus the commit sweep), and")
	fmt.Println("batch staging drops wal-acq/txn below the sequential arm's one-per-record")
	fmt.Println("rate; hold(us) and txn/s are wall-clock-ordinal on 1 vCPU — the acquisition")
	fmt.Println("columns are the machine-independent signal.")
	fmt.Println()
	benchOut.Pipeline = pts
}

// obsExperiment measures the observability layer's own cost (E21) with
// three arms: "disabled" proves every hook is free when no observer is
// attached (0 allocs/op across the nil-receiver hook set), "sampled"
// re-runs the identical seeded single-worker workload with tracing on and
// proves the final engine state is byte-identical, and
// "concurrent-sampled" runs the full contended workload against an
// asynchronous flusher to populate every phase histogram and trace-event
// kind. Latency columns are wall-clock-ordinal on 1 vCPU; the
// machine-independent signals are the allocation count, the
// identical-state bit, and the trace-kind coverage. With -trace the
// concurrent arm's Chrome trace-event JSON is written out, and with
// -obs-snapshot a durable checkpoint-and-restart run exports the unified
// introspection snapshot.
func obsExperiment(quick bool) {
	cfg := sim.DefaultObsConfig()
	if quick {
		cfg.TxnsPerWorker = 40
		cfg.Objects = 16
	}
	pts, o, err := sim.RunObs(sim.UIPNRBC, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sim.RenderObsTable(
		fmt.Sprintf("E21 — observability sweep, %d accounts, %d workers, zipf %.1f, sample %.2f, GOMAXPROCS=%d (disabled vs sampled vs concurrent)",
			cfg.Objects, cfg.Workers, cfg.ZipfS, cfg.SampleRate, runtime.GOMAXPROCS(0)), pts))
	fmt.Println("shape: the disabled arm's allocs/op column is exactly zero (nil-receiver")
	fmt.Println("hooks compile to a branch, never a box), the sampled arm's identical bit")
	fmt.Println("proves instrumentation cannot perturb workload results, and the concurrent")
	fmt.Println("arm covers every trace-event kind; latency percentiles are wall-clock-")
	fmt.Println("ordinal on 1 vCPU — allocation and coverage counts are the machine-")
	fmt.Println("independent signal.")
	fmt.Println()
	benchOut.Obs = pts
	if *flagTrace != "" {
		if err := writeObsTrace(*flagTrace, o); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace-event JSON to %s\n\n", *flagTrace)
	}
	if *flagObs != "" {
		if err := writeObsSnapshot(*flagObs, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote unified introspection snapshot to %s\n\n", *flagObs)
	}
}

// writeObsTrace exports the concurrent arm's trace buffer as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto.
func writeObsTrace(path string, o *obs.Observer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Trace().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeObsSnapshot runs the durable checkpoint-and-restart arm in a
// throwaway directory and exports the unified snapshot document.
func writeObsSnapshot(path string, cfg sim.ObsConfig) error {
	dir, err := os.MkdirTemp("", "ccbench-obs-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap, err := sim.ObsUnifiedSnapshot(sim.UIPNRBC, cfg, dir)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// redoExperiment measures the logging-discipline trade-off (E19): the
// three-participant transfer workload runs once per discipline × WAL
// backend arm — undo logging (the recovery half of update-in-place)
// versus REDO-only dependency logging (logging like deferred update:
// logical operation records with no undo payload, dependency sets on the
// commit records, aborts logging nothing) — then each arm's durable
// artifacts are crash-restarted. Wall-clock columns on a 1-vCPU box are
// ordinal only; the machine-independent signals are log bytes per commit
// (RedoSweep hard-errors if the redo arm's ever reaches the undo arm's),
// the replayed/undone record counts (redo replays the winners-only
// projection and undoes nothing), and the dependency-set volume.
func redoExperiment(quick bool) {
	cfg := sim.DefaultRedoSweepConfig()
	if quick {
		cfg.Length = 40
	}
	pts, err := sim.RedoSweep(cfg, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sim.RenderRedoTable(
		fmt.Sprintf("E19 — logging-discipline sweep, %d accounts, %d workers, %d participants/transfer, %d txns/worker, %d%% voluntary aborts (discipline × WAL backend)",
			cfg.Accounts, cfg.Workers, cfg.Participants, cfg.Length, cfg.AbortPct), pts))
	fmt.Println("shape: the redo arm logs fewer bytes per commit — no undo payloads, no")
	fmt.Println("per-object commit records, no compensation/abort trail — at the price of")
	fmt.Println("dependency sets on its commit records; its restart replays only the")
	fmt.Println("winners-only projection (Theorem 9's equieffectiveness) and undoes nothing,")
	fmt.Println("where the undo arm replays every durable record. Conservation holds in")
	fmt.Println("every arm.")
	fmt.Println()
	benchOut.Redo = pts
}

// restartExperiment measures the segmented-WAL truncation and parallel-
// restart trade-offs (E18): the checkpointed three-participant transfer
// workload runs once per WAL backend arm — the legacy single-file backend
// (truncation rewrites the surviving suffix) and the segmented backend at
// each swept rotation threshold (truncation unlinks whole dead segments,
// rewriting nothing) — and each arm's durable artifacts are crash-
// restarted at every swept parallelism. Pass 1's winner scan fans out one
// goroutine per retained segment; pass 2 hashes objects over the worker
// pool. Wall-clock columns on a 1-vCPU box are ordinal only; the
// machine-independent signals are the truncation byte/segment counts and
// the per-worker replayed-record distribution, with the recovered total
// conserved at every point and the replay sizes identical across
// parallelisms (the equivalence the recovery tests prove bit-exactly).
func restartExperiment(quick bool) {
	cfg := sim.DefaultRestartSweepConfig()
	if quick {
		cfg.Length = 60
		cfg.EveryTxns = 20
		cfg.SegmentBytes = []int64{1 << 10}
		cfg.Parallelisms = []int{1, 2}
	}
	pts, err := sim.RestartSweep(cfg, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sim.RenderRestartTable(
		fmt.Sprintf("E18 — segmented restart sweep, %d accounts, %d workers, %d participants/transfer, checkpoint every %d txns/worker, %d txns/worker total (backend × segment size × restart parallelism)",
			cfg.Accounts, cfg.Workers, cfg.Participants, cfg.EveryTxns, cfg.Length), pts))
	fmt.Println("shape: the file arm's truncRW column pays the whole surviving suffix in")
	fmt.Println("rewrite bytes at every checkpoint, while the segmented arm rewrites zero")
	fmt.Println("bytes and unlinks dead segments instead — truncation cost drops from")
	fmt.Println("O(live log) to O(dead segments). At restart, pass 1 fans out over the")
	fmt.Println("retained segments and pass 2 spreads replay across the worker pool")
	fmt.Println("(busy/par), with identical replayed counts at every parallelism.")
	fmt.Println()
	benchOut.Restart = pts
}

// checkpointExperiment measures restart cost versus log length (E17): the
// fan-out transfer workload on a real file-backed WAL at increasing run
// lengths, with fuzzy checkpointing (and log truncation) off versus on,
// then a timed crash-restart from the durable artifacts. Off: the restart
// replays the whole log, so replayed records grow linearly with run
// length. On: restart seeds from the newest snapshot and replays only the
// suffix past the checkpoint frontier, so the replay count is bounded by
// the checkpoint interval regardless of run length — the
// recovery-versus-log-length trade-off the checkpoint subsystem exists to
// flatten. Wall-clock restart times on a 1-vCPU box are ordinal only; the
// replayed/truncated record counts are the machine-independent signal.
func checkpointExperiment(quick bool) {
	cfg := sim.DefaultCheckpointConfig()
	if quick {
		cfg.EveryTxns = 20
		cfg.Lengths = []int{40, 120}
	}
	pts, err := sim.CheckpointSweep(cfg, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sim.RenderCheckpointTable(
		fmt.Sprintf("E17 — checkpointed restart sweep, %d accounts, %d workers, %d participants/transfer, checkpoint every %d txns/worker (file-backed WAL)",
			cfg.Accounts, cfg.Workers, cfg.Participants, cfg.EveryTxns), pts))
	fmt.Println("shape: with checkpointing off, replayed records grow linearly with run length")
	fmt.Println("(the whole log is the restart's input); with it on, truncation keeps the")
	fmt.Println("retained log near the last checkpoint interval and restart replays only the")
	fmt.Println("suffix past the frontier — bounded replay at every run length, with the")
	fmt.Println("recovered total conserved either way.")
	fmt.Println()
	benchOut.Checkpoint = pts
}

// releaseExperiment measures the lock-release-policy trade-off (E16):
// throughput, commit-latency percentiles, commit-time lock hold, and
// dependency stalls across release policy × simulated sync latency ×
// contention skew, on the asynchronous WAL over the fsync-simulating
// backend. ReleaseAfterAck closes the early-release durability hole by
// holding locks across the barrier — the hold then includes the flusher
// dwell plus the sync — while ReleaseEarlyTracked closes it with
// dependency tickets at (near) zero lock-hold cost. In quick mode a single
// smoke point per policy keeps the sweep path exercised in CI.
func releaseExperiment(quick bool) {
	cfg := sim.DefaultReleaseConfig()
	policies := []txn.ReleasePolicy{txn.ReleaseEarlyTracked, txn.ReleaseAfterAck}
	latencies := []time.Duration{0, 100 * time.Microsecond, 500 * time.Microsecond}
	skews := []float64{0, 1.3}
	if quick {
		cfg.TxnsPerWorker = 30
		latencies = []time.Duration{100 * time.Microsecond}
		skews = []float64{0}
	}
	pts, err := sim.ReleaseSweep(sim.UIPNRBC, cfg, policies, latencies, skews)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sim.RenderReleaseTable(
		fmt.Sprintf("E16 — lock-release-policy sweep, %d accounts, %d workers, dwell %dus, GOMAXPROCS=%d (policy × sync latency × zipf skew)",
			cfg.Objects, cfg.Workers, cfg.BatchInterval.Microseconds(), runtime.GOMAXPROCS(0)), pts))
	fmt.Println("shape: release-after-ack's mean lock hold includes the dwell and the sync —")
	fmt.Println("its blocked count and commit latency grow with sync latency and skew, while")
	fmt.Println("release-early-tracked keeps holds at in-memory cost and pays only dependency")
	fmt.Println("stalls (commits whose read-from set was not yet durable at the barrier).")
	fmt.Println()
	benchOut.Release = pts
}

// flushExperiment measures the group-commit trade-off (E15): commit-
// latency percentiles and mean durable batch size across a flusher-dwell ×
// sync-latency grid, on the asynchronous WAL over the fsync-simulating
// backend. Longer dwells amortize each sync over more transactions at the
// price of commit latency; sync latency sets the floor the amortization
// is worth paying for.
func flushExperiment(quick bool) {
	cfg := sim.DefaultFlushConfig()
	if quick {
		cfg.TxnsPerWorker = 30
	}
	intervals := []time.Duration{0, 200 * time.Microsecond, time.Millisecond}
	latencies := []time.Duration{0, 100 * time.Microsecond, 500 * time.Microsecond}
	pts, err := sim.FlushSweep(sim.UIPNRBC, cfg, intervals, latencies)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sim.RenderFlushTable(
		fmt.Sprintf("E15 — group-commit flush sweep, %d accounts, %d workers, GOMAXPROCS=%d (dwell × simulated sync latency)",
			cfg.Objects, cfg.Workers, runtime.GOMAXPROCS(0)), pts))
	fmt.Println("shape: p50 commit latency tracks dwell + sync latency; mean batch size grows")
	fmt.Println("with dwell, cutting syncs — the batch-size-vs-latency trade-off of group")
	fmt.Println("commit. With zero dwell each commit barrier syncs almost alone.")
	fmt.Println()
	benchOut.Flush = pts
}

// scalingExperiment measures the wide-object workload across the joint
// shard-count × zipf-skew grid (E14): with one shard the engine
// degenerates to a single-mutex registry — the pre-sharding design — and
// with skew the key distribution collapses onto hot objects, so the grid
// shows where sharding pays and where contention takes it back. Each grid
// cell is measured under three operation mixes: the update-heavy default,
// the read-mostly variant (90% balance reads, isolating the
// registry/locking read path from recovery costs), and a long-read
// variant pinning 10% of the read-mostly transactions open for a 32-op
// scan against the update stream. With -json the points are written to
// BENCH_engine.json.
func scalingExperiment(quick bool) {
	counts := []int{1, 2, 4, 8, 16}
	if *flagShards > 0 {
		counts = []int{*flagShards}
	}
	skews := []float64{0, 1.3}
	longRead := sim.ReadMostlyScalingConfig()
	longRead.LongReadPct = 10
	longRead.LongReadOps = 32
	longRead.Mix = "read-mostly+longread"
	configs := []sim.ScalingConfig{sim.DefaultScalingConfig(), sim.ReadMostlyScalingConfig(), longRead}
	if quick {
		skews = []float64{0}
	}
	var pts []sim.ScalingPoint
	for _, cfg := range configs {
		if quick {
			cfg.TxnsPerWorker = 60
		}
		for _, s := range []sim.Scheduler{sim.UIPNRBC, sim.DUNFC} {
			pts = append(pts, sim.ScalingGridSweep(s, cfg, skews, counts)...)
		}
	}
	base := sim.DefaultScalingConfig()
	fmt.Println(sim.RenderScalingTable(
		fmt.Sprintf("E14 — engine scaling sweep, %d objects, %d workers, GOMAXPROCS=%d (shards × zipf skew; shards=1 is the single-mutex design; update-heavy vs read-mostly vs long-read mix)",
			base.Objects, base.Workers, runtime.GOMAXPROCS(0)), pts))
	fmt.Println("shape: ops/s grows with shard count until the hardware parallelism or the")
	fmt.Println("workload's conflict mass is exhausted, and skew flattens the shard curve —")
	fmt.Println("sharding only pays while keys spread; the read-mostly mix measures the")
	fmt.Println("harness's per-operation floor, the long-read mix pits pinned-open scans")
	fmt.Println("against the update stream, and the per-shard histories always merge into one")
	fmt.Println("totally ordered history (verified by the sim tests).")
	fmt.Println()
	benchOut.Scaling = pts
}

// massExperiment prints the deterministic conflict-mass sweep: the
// machine-independent trade-off curve (E11's shape).
func massExperiment(bool) {
	ba := adt.DefaultBankAccount()
	mixes := [][2]int{{0, 100}, {10, 90}, {20, 80}, {30, 70}, {40, 60}, {50, 50}, {60, 40}, {70, 30}, {80, 20}, {90, 10}, {100, 0}}
	rels := []commute.Relation{ba.NRBC(), ba.NFC(), ba.RW()}
	rows := sim.ConflictMassTable(rels, mixes, 1<<20)
	fmt.Println(sim.RenderMassTable(
		"E11a — exact conflict mass by mix (deposit%/withdraw%), bank account, high balance",
		[]string{"UIP(NRBC)", "DU(NFC)", "RW"}, rows))
	fmt.Println("shape: NRBC = 0 on withdraw-only mixes (UIP wins), NFC < NRBC on deposit-heavy")
	fmt.Println("mixes (DU wins), equal at 50/50, RW dominates everywhere. The relations are")
	fmt.Println("incomparable: neither column dominates the other.")
	fmt.Println()
}

func bankingExperiment(quick bool) {
	cfg := sim.DefaultBankingConfig()
	if quick {
		cfg.TxnsPerWorker = 40
	}
	for _, mix := range []struct {
		name     string
		dep, wdr int
	}{
		{"withdraw-heavy (0/100)", 0, 100},
		{"balanced (30/50)", 30, 50},
		{"deposit-heavy (80/20)", 80, 20},
	} {
		c := cfg
		c.DepositPct, c.WithdrawPct = mix.dep, mix.wdr
		var rows []sim.Result
		for _, s := range sim.Schedulers {
			r, _ := sim.RunBanking(s, c)
			rows = append(rows, r)
		}
		fmt.Println(sim.RenderTable(
			fmt.Sprintf("E11b — banking engine run, %s, %d hot accounts, %d workers",
				mix.name, c.Accounts, c.Workers), rows))
	}
}

func poolExperiment(quick bool) {
	cfg := sim.DefaultPoolConfig()
	if quick {
		cfg.TxnsPerWorker = 40
	}
	var rows []sim.Result
	for _, s := range []sim.Scheduler{sim.UIPNRBC, sim.DUNFC, sim.UIPRW, sim.DURW} {
		r, _ := sim.RunPool(s, cfg)
		rows = append(rows, r)
	}
	fmt.Println(sim.RenderTable(
		fmt.Sprintf("E12 — resource pool (partial+nondeterministic alloc), %d resources, %d workers",
			cfg.Resources, cfg.Workers), rows))
	fmt.Println("shape: update-in-place sees in-flight allocations and parallelizes allocs;")
	fmt.Println("deferred update computes every alloc against the committed pool and serializes.")
	fmt.Println()
}

func recoveryExperiment(quick bool) {
	cfg := sim.DefaultRecoveryCostConfig()
	if quick {
		cfg.TxnsPerWorker = 60
	}
	fmt.Printf("E13 — recovery cost profile (%d%% aborts)\n", cfg.AbortPct)
	fmt.Printf("%-12s %8s %8s %10s %10s %10s %8s\n",
		"scheduler", "commits", "aborts", "undos", "cmtApply", "replays", "walRecs")
	for _, s := range []sim.Scheduler{sim.UIPNRBC, sim.DUNFC} {
		r := sim.RunRecoveryCost(s, cfg)
		fmt.Printf("%-12s %8d %8d %10d %10d %10d %8d\n",
			r.Scheduler, r.Commits, r.Aborts, r.Undos, r.CommitApplies, r.Replays, r.WALRecords)
	}
	fmt.Println("shape: undo-log pays on abort (undos, WAL); intentions pays on commit")
	fmt.Println("(application + workspace replays) and aborts for free.")
	fmt.Println()
}
