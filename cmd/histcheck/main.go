// Command histcheck reads a history file (see internal/histfile for the
// format) and reports its correctness properties: well-formedness,
// atomicity, dynamic atomicity, online dynamic atomicity, and — when a
// recovery method is specified — whether the abstract object automaton
// I(X, Spec, View, Conflict) accepts each object's projection under the
// minimal conflict relation for that method.
//
// Usage:
//
//	histcheck [-view uip|du] [-online] file.hist
//	cat file.hist | histcheck
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicity"
	"repro/internal/commute"
	"repro/internal/core"
	"repro/internal/histfile"
	"repro/internal/history"
)

func main() {
	viewName := flag.String("view", "", "check acceptance by the abstract model with this recovery method: uip or du")
	online := flag.Bool("online", false, "also check online dynamic atomicity (exponential in active transactions)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	file, err := histfile.Parse(in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("events: %d, objects: %d, transactions: %d\n",
		len(file.H), len(file.H.Objects()), len(file.H.Txns()))

	if err := history.WellFormed(file.H); err != nil {
		fmt.Printf("well-formed:            NO (%v)\n", err)
		os.Exit(1)
	}
	fmt.Println("well-formed:            yes")

	atomic, err := atomicity.Atomic(file.H, file.Specs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("atomic:                 %s\n", yesNo(atomic))

	da, viol, err := atomicity.DynamicAtomic(file.H, file.Specs)
	if err != nil {
		fatal(err)
	}
	if da {
		fmt.Println("dynamic atomic:         yes")
	} else {
		fmt.Printf("dynamic atomic:         NO (%v)\n", viol)
	}

	if *online {
		oda, viol, err := atomicity.OnlineDynamicAtomic(file.H, file.Specs)
		if err != nil {
			fatal(err)
		}
		if oda {
			fmt.Println("online dynamic atomic:  yes")
		} else {
			fmt.Printf("online dynamic atomic:  NO (%v)\n", viol)
		}
	}

	if *viewName != "" {
		var view core.View
		switch *viewName {
		case "uip":
			view = core.UIP
		case "du":
			view = core.DU
		default:
			fatal(fmt.Errorf("unknown view %q (want uip or du)", *viewName))
		}
		for _, x := range file.H.Objects() {
			ty := file.Types[x]
			var rel commute.Relation
			if *viewName == "uip" {
				rel = ty.NRBC()
			} else {
				rel = ty.NFC()
			}
			ok, idx, reason := core.Accepts(x, file.Specs[x], view, rel, file.H.ProjectObj(x))
			if ok {
				fmt.Printf("I(%s,Spec,%s,%s) accepts:  yes\n", x, view.Name, rel.Name())
			} else {
				fmt.Printf("I(%s,Spec,%s,%s) accepts:  NO (event %d: %s)\n", x, view.Name, rel.Name(), idx, reason)
			}
		}
	}

	if !da {
		os.Exit(1)
	}
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "histcheck:", err)
	os.Exit(1)
}
