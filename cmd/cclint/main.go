// Command cclint is the engine's invariant-lint multichecker: five
// go/analysis-style analyzers that mechanically enforce the recovery and
// locking disciplines the paper's theory demands but the compiler cannot
// see.
//
// Standalone:
//
//	go run ./cmd/cclint ./...          # lint the module, exit 2 on findings
//	go run ./cmd/cclint -list          # describe the analyzers
//	go run ./cmd/cclint -summary-out f ./...  # also write the suppression summary
//
// As a vet tool (the unitchecker protocol, reimplemented on the stdlib):
//
//	go build -o cclint ./cmd/cclint
//	go vet -vettool=$PWD/cclint ./...
//
// Analyzers and the bug class each one encodes:
//
//	walerr             swallowed wal.Log errors (PR 7's nine bare-Flush swallows)
//	locksafe           latch acquired without release on an exit path (PR 3)
//	stagebeforemutate  store mutated before its WAL record was staged
//	detreplay          nondeterminism in restart/verification paths
//	atomicfield        mixed atomic/plain access to a published field
//
// A finding is silenced only by a trailing `//lint:ignore <analyzer>
// <justification>` comment; cclint counts every suppression and prints
// the justifications in its summary, so silence stays auditable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/detreplay"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/stagebeforemutate"
	"repro/internal/analysis/walerr"
)

// analyzers is the cclint suite, in report order.
var analyzers = []*analysis.Analyzer{
	walerr.Analyzer,
	locksafe.Analyzer,
	stagebeforemutate.Analyzer,
	detreplay.Analyzer,
	atomicfield.Analyzer,
}

// scopes restricts path-sensitive analyzers to the packages whose
// disciplines they encode; walerr and atomicfield apply everywhere.
var scopes = analysis.Scope{
	"locksafe":          {"internal/txn", "internal/stripe", "internal/checkpoint"},
	"stagebeforemutate": {"internal/recovery", "internal/txn"},
	"detreplay":         {"internal/recovery", "internal/history", "internal/obs"},
}

func main() {
	args := os.Args[1:]
	// The go vet protocol probes the tool before handing it a package
	// config: -V=full must print an identity line, -flags a JSON flag
	// description, and a lone *.cfg argument selects unitchecker mode.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Println("cclint version 1 (walerr locksafe stagebeforemutate detreplay atomicfield)")
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(vetMode(args[n-1]))
	}

	fs := flag.NewFlagSet("cclint", flag.ExitOnError)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	summaryOut := fs.String("summary-out", "", "also write the suppression summary to this file")
	quiet := fs.Bool("q", false, "suppress the summary on success")
	fs.Parse(args)

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
			if s := scopes[a.Name]; len(s) > 0 {
				fmt.Printf("%-18s scope: %s\n", "", strings.Join(s, ", "))
			}
		}
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		os.Exit(1)
	}
	res, err := analysis.RunRoot(dir, patterns, analyzers, scopes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		os.Exit(1)
	}
	for _, d := range res.Findings {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	summary := res.Summary()
	if *summaryOut != "" {
		if err := os.WriteFile(*summaryOut, []byte(summary), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cclint: writing summary:", err)
			os.Exit(1)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprint(os.Stderr, summary)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Print(summary)
	}
}
