package main

// The go vet -vettool protocol (a stdlib-only reimplementation of
// x/tools' unitchecker): cmd/go hands the tool a JSON config naming one
// package's files and the export data of its dependencies; the tool
// type-checks, analyzes, prints findings to stderr, writes its (empty)
// facts file, and exits nonzero when findings remain.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the fields of cmd/go's vet config that cclint needs.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint: reading vet config:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cclint: parsing vet config:", err)
		return 1
	}
	// The facts file must exist even when there is nothing to report —
	// cmd/go caches it as the action's output.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}

	// Test variants re-exercise forbidden shapes on purpose; cclint
	// checks the engine's non-test code in both modes.
	if strings.HasSuffix(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		writeVetx()
		return 0
	}
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "cclint:", err)
			return 1
		}
		syntax = append(syntax, af)
	}
	if len(syntax) == 0 {
		writeVetx()
		return 0
	}

	// Resolve imports from the compiler export data cmd/go already built.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "cclint:", err)
		return 1
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Name:      tpkg.Name(),
		Dir:       cfg.Dir,
		GoFiles:   cfg.GoFiles,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if scopes.Allows(a.Name, cfg.ImportPath) {
			active = append(active, a)
		}
	}
	diags, err := analysis.RunAnalyzers(pkg, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		return 1
	}
	diags = analysis.ApplySuppressions(pkg, diags)
	writeVetx()
	if cfg.VetxOnly {
		return 0
	}
	n := 0
	for _, d := range diags {
		if !d.Suppressed {
			fmt.Fprintf(os.Stderr, "%s\n", d)
			n++
		}
	}
	if n > 0 {
		return 2
	}
	return 0
}
